//! Verifies the engines' zero-allocation steady-state guarantee with a
//! counting global allocator.
//!
//! The whole check lives in a single `#[test]` (per-thread counters keep the
//! libtest harness threads out of the measurement).  Phases:
//!
//! 1. the flat [`SyncEngine`] performs **zero** heap allocations per round
//!    once buffer capacities have reached their high-water mark;
//! 2. the [`ReferenceEngine`] (the pre-optimisation implementation) keeps
//!    allocating every round — by at least 5 allocations per round per the
//!    issue's target (in practice it is O(n) per round);
//! 3. the [`AsyncEngine`] also runs allocation-free in steady state;
//! 4. **heap payloads**: a `Vec<u8>`-frame protocol — non-`Copy`, one heap
//!    buffer per message — also runs at 0 allocations/round on the
//!    [`SyncEngine`], through the payload arena's intern + recycle loop;
//! 5. the same for the [`AsyncEngine`]'s refcounted payload slab.
//!
//! A separate test covers the arena-reuse property: over a 1 000-round run
//! the payload slab's capacity and high-water mark stay at one round's
//! traffic (handles freed by the expiry of round `r` are reissued in round
//! `r + 1`), and the reference engine stays on the clone path.

use netsim_graph::{generators, NodeId};
use netsim_sim::{
    protocols::TreeBroadcast, AsyncConfig, AsyncCtx, AsyncEngine, AsyncProtocol, ChannelId,
    ChannelSet, Protocol, ReferenceEngine, RoundIo, SlotOutcome, SyncEngine,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// Per-thread counter so allocations by the libtest harness threads cannot
// perturb the measurement.  Const-initialised and droppable-free, so reading
// it inside the allocator cannot recurse into lazy TLS initialisation.
thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // TLS may be unavailable during thread teardown; those allocations
    // belong to the runtime, not the measured engine loop.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

/// Counts every allocation entry point (alloc, realloc, alloc_zeroed) on the
/// current thread and delegates to the system allocator.
struct CountingAllocator;

// SAFETY: delegates directly to `System`, which upholds the `GlobalAlloc`
// contract; the counter updates have no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Constant-traffic heartbeat: every node sends its running accumulator to
/// every neighbour each round for a fixed number of rounds.  The protocol
/// state is `Copy`, so all allocation observed during stepping belongs to the
/// engine.
#[derive(Clone, Copy)]
struct Heartbeat {
    acc: u64,
    rounds_left: u32,
}

impl Protocol for Heartbeat {
    type Msg = u64;
    fn step(&mut self, io: &mut RoundIo<'_, u64>) {
        for (_, &v) in io.inbox() {
            self.acc = self.acc.wrapping_add(v);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            io.send_all(self.acc | 1);
            if io.id() == NodeId(0) {
                io.write_channel(self.acc);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Async counterpart: a token bounces between neighbours for a fixed number
/// of hops per node while node 0 writes the channel each slot.
struct AsyncHeartbeat {
    id: NodeId,
    hops_left: u32,
}

impl AsyncProtocol for AsyncHeartbeat {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u64>) {
        ctx.send_all(1);
    }
    fn on_message(&mut self, _from: NodeId, v: &u64, ctx: &mut AsyncCtx<'_, u64>) {
        if self.hops_left > 0 {
            self.hops_left -= 1;
            let next = ctx
                .neighbors()
                .target((*v as usize) % ctx.neighbors().len());
            ctx.send(next, v.wrapping_mul(31).wrapping_add(1));
        }
    }
    fn on_slot(&mut self, _o: &SlotOutcome<u64>, ctx: &mut AsyncCtx<'_, u64>) {
        if self.id == NodeId(0) && self.hops_left > 0 {
            ctx.write_channel(u64::from(self.hops_left));
        }
    }
    fn is_done(&self) -> bool {
        self.hops_left == 0
    }
}

/// Heap-payload heartbeat: every node broadcasts a 64-byte `Vec<u8>` frame
/// each round, rebuilt **in place** from a recycled arena buffer — the
/// pattern that makes non-`Copy` protocols allocation-free.
struct FrameHeartbeat {
    acc: u64,
    rounds_left: u32,
}

impl Protocol for FrameHeartbeat {
    type Msg = Vec<u8>;
    fn step(&mut self, io: &mut RoundIo<'_, Vec<u8>>) {
        for (_, frame) in io.inbox() {
            self.acc = self
                .acc
                .wrapping_add(frame.len() as u64)
                .wrapping_add(u64::from(frame.first().copied().unwrap_or(0)));
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let mut frame = io.recycle_payload().unwrap_or_default();
            frame.clear();
            frame.resize(64, (self.acc & 0xff) as u8);
            io.send_all(frame);
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Async heap-payload counterpart: a 64-byte frame bounces between
/// neighbours, each hop copied into a recycled slab buffer; node 0 keeps a
/// channel write alive with an **empty** `Vec` (capacity-free, so the slot
/// resolution's clone cannot allocate either).
struct AsyncFrameHeartbeat {
    id: NodeId,
    hops_left: u32,
}

impl AsyncProtocol for AsyncFrameHeartbeat {
    type Msg = Vec<u8>;
    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Vec<u8>>) {
        ctx.send_all(vec![1; 64]);
    }
    fn on_message(&mut self, _from: NodeId, frame: &Vec<u8>, ctx: &mut AsyncCtx<'_, Vec<u8>>) {
        if self.hops_left > 0 {
            self.hops_left -= 1;
            let next = ctx
                .neighbors()
                .target(frame.len().wrapping_add(usize::from(frame[0])) % ctx.neighbors().len());
            let mut fwd = ctx.recycle_payload().unwrap_or_default();
            fwd.clear();
            fwd.extend_from_slice(frame);
            fwd[0] = fwd[0].wrapping_mul(31).wrapping_add(1);
            ctx.send(next, fwd);
        }
    }
    fn on_slot(&mut self, _o: &SlotOutcome<Vec<u8>>, ctx: &mut AsyncCtx<'_, Vec<u8>>) {
        if self.id == NodeId(0) && self.hops_left > 0 {
            ctx.write_channel(Vec::new());
        }
    }
    fn is_done(&self) -> bool {
        self.hops_left == 0
    }
}

/// Channel-frame heartbeat over a **non-default** channel of a two-channel
/// set: the round-robin writer of the round rebuilds a 64-byte frame in a
/// recycled arena buffer and keys channel 1; every node folds the winning
/// frame it hears there.  The winner is delivered *by handle* out of the
/// delivery arena — resolving the slot clones nothing — and its buffer
/// expires into the graveyard for the next writer to recycle, so the whole
/// loop is allocation-free in steady state.
struct ChannelFrameHeartbeat {
    id: NodeId,
    n: usize,
    acc: u64,
    rounds_left: u32,
}

impl Protocol for ChannelFrameHeartbeat {
    type Msg = Vec<u8>;
    fn step(&mut self, io: &mut RoundIo<'_, Vec<u8>>) {
        assert!(
            io.prev_slot().is_idle(),
            "nothing ever writes the default channel"
        );
        if let SlotOutcome::Success { from, msg } = io.prev_slot_on(ChannelId(1)) {
            self.acc = self
                .acc
                .wrapping_add(from.index() as u64)
                .wrapping_add(u64::from(msg[0]))
                .wrapping_add(msg.len() as u64);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            if io.round() % self.n as u64 == self.id.index() as u64 {
                let mut frame = io.recycle_payload().unwrap_or_default();
                frame.clear();
                frame.resize(64, (self.acc & 0xff) as u8);
                io.write_channel_on(ChannelId(1), frame);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Async counterpart: node 0 keys 64-byte frames on channel 1 of a
/// two-channel set every slot, rebuilt from the slab graveyard (which the
/// boundary resolution parks retired slot winners into).
struct AsyncChannelFrameHeartbeat {
    id: NodeId,
    slots_left: u32,
}

impl AsyncProtocol for AsyncChannelFrameHeartbeat {
    type Msg = Vec<u8>;
    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Vec<u8>>) {
        if self.id == NodeId(0) {
            let mut frame = vec![0; 64];
            frame[0] = 1;
            ctx.write_channel_on(ChannelId(1), frame);
        }
    }
    fn on_message(&mut self, _from: NodeId, _msg: &Vec<u8>, _ctx: &mut AsyncCtx<'_, Vec<u8>>) {}
    fn on_slot_on(
        &mut self,
        chan: ChannelId,
        outcome: &SlotOutcome<Vec<u8>>,
        ctx: &mut AsyncCtx<'_, Vec<u8>>,
    ) {
        if chan != ChannelId(1) {
            assert!(outcome.is_idle(), "only channel 1 is ever written");
            return;
        }
        if self.slots_left > 0 {
            self.slots_left -= 1;
            if self.id == NodeId(0) && self.slots_left > 0 {
                let mut frame = ctx.recycle_payload().unwrap_or_default();
                frame.clear();
                frame.resize(64, (self.slots_left & 0xff) as u8);
                ctx.write_channel_on(ChannelId(1), frame);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.slots_left == 0
    }
}

#[test]
fn engines_meet_their_allocation_contracts() {
    let g = generators::Family::Grid.generate(400, 7);

    // Phase 1: flat engine — zero allocations per round in steady state.
    let mut engine = SyncEngine::new(&g, |_| Heartbeat {
        acc: 1,
        rounds_left: 64,
    });
    for _ in 0..8 {
        engine.step_round(); // reach the capacity high-water mark
    }
    let before = allocs();
    for _ in 0..40 {
        engine.step_round();
    }
    let flat_allocs = allocs() - before;
    assert_eq!(
        flat_allocs, 0,
        "SyncEngine::step_round allocated {flat_allocs} times over 40 steady-state rounds"
    );
    // The workload really did run: messages flowed every round.
    assert!(engine.cost().p2p_messages > 0);
    assert!(engine.in_flight() > 0);

    // Phase 1b: the radix-partitioned scatter (n ≥ 16384 with index-random
    // adjacency) is also allocation-free once the partition scratch has
    // reached its high-water mark.
    let big = netsim_graph::topologies::degree_bounded_expander(1 << 14, 4, 11);
    let mut radix_engine = SyncEngine::new(&big, |_| Heartbeat {
        acc: 1,
        rounds_left: 16,
    });
    for _ in 0..4 {
        radix_engine.step_round();
    }
    let before = allocs();
    for _ in 0..10 {
        radix_engine.step_round();
    }
    let radix_allocs = allocs() - before;
    assert_eq!(
        radix_allocs, 0,
        "radix-path step_round allocated {radix_allocs} times over 10 steady-state rounds"
    );
    assert!(radix_engine.in_flight() > 0);

    // Phase 2: the reference engine allocates every round.
    let mut reference = ReferenceEngine::new(&g, |_| Heartbeat {
        acc: 1,
        rounds_left: 64,
    });
    for _ in 0..8 {
        reference.step_round();
    }
    let before = allocs();
    for _ in 0..40 {
        reference.step_round();
    }
    let reference_allocs = allocs() - before;
    assert!(
        reference_allocs >= 5 * 40,
        "reference engine allocated only {reference_allocs} times over 40 rounds; \
         expected at least 5 per round"
    );

    // Phase 3: async engine — zero allocations per tick in steady state.
    let cfg = AsyncConfig {
        slot_ticks: 4,
        max_delay_ticks: 4,
        seed: 3,
    };
    let ring = generators::ring(64);
    let mut async_engine = AsyncEngine::new(&ring, cfg, |id| AsyncHeartbeat {
        id,
        hops_left: 10_000,
    });
    async_engine.run(2_000); // warm up: slab, heap, and scratch reach capacity
    let before = allocs();
    async_engine.run(6_000);
    let async_allocs = allocs() - before;
    assert_eq!(
        async_allocs, 0,
        "AsyncEngine allocated {async_allocs} times over 4000 steady-state ticks"
    );
    assert!(async_engine.cost().p2p_messages > 1000);

    // Phase 4: heap payloads on the flat engine — a Vec<u8>-frame protocol
    // runs at 0 allocations/round through the payload arena (intern once per
    // broadcast, recycle expired buffers back to senders).
    let mut frames = SyncEngine::new(&g, |_| FrameHeartbeat {
        acc: 1,
        rounds_left: 64,
    });
    for _ in 0..8 {
        frames.step_round(); // warm up: slab, graveyard, and frame capacities
    }
    let before = allocs();
    for _ in 0..40 {
        frames.step_round();
    }
    let frame_allocs = allocs() - before;
    assert_eq!(
        frame_allocs, 0,
        "SyncEngine allocated {frame_allocs} times over 40 steady-state Vec<u8>-payload rounds"
    );
    assert!(frames.in_flight() > 0);
    // Intern-on-broadcast: one payload per *node* per round in flight, not
    // one per delivery (the grid has ~2n more deliveries than broadcasts).
    assert_eq!(frames.payload_arena().live(), g.node_count());
    assert!(frames.in_flight() > 2 * g.node_count());

    // Phase 5: heap payloads on the async engine — the refcounted slab plus
    // graveyard recycling keep Vec<u8> forwarding allocation-free too.
    let mut async_frames = AsyncEngine::new(&ring, cfg, |id| AsyncFrameHeartbeat {
        id,
        hops_left: 10_000,
    });
    async_frames.run(2_000);
    let before = allocs();
    async_frames.run(6_000);
    let async_frame_allocs = allocs() - before;
    assert_eq!(
        async_frame_allocs, 0,
        "AsyncEngine allocated {async_frame_allocs} times over 4000 steady-state \
         Vec<u8>-payload ticks"
    );
    assert!(async_frames.cost().p2p_messages > 1000);

    // Phase 6: heap payloads over a NON-DEFAULT channel on the flat engine —
    // the slot winner is delivered by handle out of the delivery arena (no
    // `resolve_slot` clone), expires into the graveyard, and is recycled by
    // the next writer: 0 allocations/round.
    let small = generators::Family::Grid.generate(64, 7);
    let n = small.node_count();
    let mut chan_frames =
        SyncEngine::with_channels(&small, ChannelSet::uniform(2), |id| ChannelFrameHeartbeat {
            id,
            n,
            acc: 1,
            rounds_left: 64,
        });
    for _ in 0..8 {
        chan_frames.step_round();
    }
    let before = allocs();
    for _ in 0..40 {
        chan_frames.step_round();
    }
    let chan_frame_allocs = allocs() - before;
    assert_eq!(
        chan_frame_allocs, 0,
        "SyncEngine allocated {chan_frame_allocs} times over 40 steady-state \
         non-default-channel Vec<u8> rounds"
    );
    assert!(chan_frames.cost().slots_success >= 40);
    // Every node folded frames: the channel really carried traffic.
    assert!(chan_frames.nodes().iter().all(|p| p.acc > 1));

    // Phase 7: the same over the async engine — retired slot winners are
    // parked in the slab graveyard and recycled by the next write.
    let mut async_chan_frames =
        AsyncEngine::with_channels(&ring, cfg, ChannelSet::uniform(2), |id| {
            AsyncChannelFrameHeartbeat {
                id,
                slots_left: 2_000,
            }
        });
    async_chan_frames.run(500);
    let before = allocs();
    async_chan_frames.run(6_000);
    let async_chan_frame_allocs = allocs() - before;
    assert_eq!(
        async_chan_frame_allocs, 0,
        "AsyncEngine allocated {async_chan_frame_allocs} times over steady-state \
         non-default-channel Vec<u8> slots"
    );
    assert!(async_chan_frames.cost().slots_success > 100);
}

/// `TreeBroadcast` steady state: once a node has forwarded, its step must
/// not touch the heap — the seed cloned the (possibly heap-carrying) value
/// *and* the whole children list every round even after `forwarded` was set.
#[test]
fn tree_broadcast_steps_allocation_free_after_forwarding() {
    // Path rooted at 0: parent i forwards to child i + 1.
    let g = generators::path(64);
    let n = g.node_count();
    let mut eng = SyncEngine::new(&g, |id| {
        let children = if id.index() + 1 < n {
            vec![NodeId(id.index() + 1)]
        } else {
            vec![]
        };
        let value = if id.index() == 0 {
            Some(vec![7u8; 256])
        } else {
            None
        };
        TreeBroadcast::new(children, value)
    });
    let out = eng.run(1000);
    assert!(out.is_completed());
    for v in g.nodes() {
        assert_eq!(eng.node(v).value(), Some(&vec![7u8; 256]));
    }
    // Broadcast complete: every further round re-steps done nodes.  With the
    // borrow-based step this touches no heap at all.
    let before = allocs();
    for _ in 0..20 {
        eng.step_round();
    }
    let post_allocs = allocs() - before;
    assert_eq!(
        post_allocs, 0,
        "TreeBroadcast allocated {post_allocs} times over 20 post-broadcast rounds"
    );
}

/// Arena-reuse property: on a 1 000-round constant-traffic heap-payload run,
/// the payload slab stops growing after warm-up — the handles freed by the
/// expiry of round `r` are reissued in round `r + 1` (same slot indices, so
/// capacity == high-water mark == one round's broadcasts per arena).
#[test]
fn payload_slab_high_water_is_bounded_over_1k_rounds() {
    let g = generators::Family::Grid.generate(100, 3);
    let n = g.node_count();
    let mut engine = SyncEngine::new(&g, |_| FrameHeartbeat {
        acc: 1,
        rounds_left: 1_100,
    });
    for _ in 0..8 {
        engine.step_round();
    }
    let warmed = engine.payload_slab_capacity();
    // One broadcast per node per round, double-buffered: the whole footprint
    // is two epochs' worth of slots.
    assert_eq!(warmed, 2 * n, "slab footprint should be two epochs");
    assert_eq!(engine.payload_arena().high_water(), n);
    for round in 0..1_000 {
        engine.step_round();
        assert_eq!(
            engine.payload_slab_capacity(),
            warmed,
            "payload slab grew at round {round}: handles were not reissued"
        );
        assert_eq!(engine.payload_arena().live(), n);
    }
    assert_eq!(engine.payload_arena().high_water(), n);
    // The graveyard is bounded too: at most one epoch parked for recycling.
    assert!(engine.payload_arena().recyclable() <= n);
}

/// Sparse token relay for the active-set contract: every node is done from
/// the start; tokens carry a hop budget in their high 32 bits and bounce
/// between neighbours until it runs out.  Only token receivers ever act, so
/// the frontier is O(live tokens) while the graph holds a million idle
/// nodes.
#[cfg(not(debug_assertions))]
struct SparseToken {
    id: NodeId,
}

#[cfg(not(debug_assertions))]
const TOKEN_SEEDS: usize = 64;

#[cfg(not(debug_assertions))]
impl Protocol for SparseToken {
    type Msg = u64;
    fn step(&mut self, io: &mut RoundIo<'_, u64>) {
        for (_, &t) in io.inbox() {
            let hops = t >> 32;
            if hops > 0 && io.degree() > 0 {
                let x = (t as u32).wrapping_mul(0x9e37_79b9).wrapping_add(1);
                let next = io.neighbors().target(x as usize % io.degree());
                io.send(next, (hops - 1) << 32 | u64::from(x));
            }
        }
        if io.round() == 0 && self.id.index() < TOKEN_SEEDS {
            io.send(
                io.neighbors().target(0),
                48u64 << 32 | self.id.index() as u64,
            );
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

/// Active-set stepping contract on a **million-node** graph (release builds
/// only — the graph build and the all-active round 0 are debug-prohibitive):
/// once warm, a round with `F` frontier members steps exactly those members
/// with **zero** heap allocations, and a fully idle round steps nobody —
/// per-round cost is O(frontier), not O(n).
#[cfg(not(debug_assertions))]
#[test]
fn sparse_million_node_idle_rounds_are_allocation_free_and_o_frontier() {
    let n = 1usize << 20;
    let g = netsim_graph::topologies::degree_bounded_expander(n, 4, 11);
    let mut eng = SyncEngine::new(&g, |id| SparseToken { id });
    eng.enable_sparse_stepping();
    // Warm up: round 0 is the all-active boot round; a few more rounds take
    // every pooled buffer (frontier member list, touched list, staging,
    // arena) to its constant-traffic high-water mark.
    for _ in 0..8 {
        eng.step_round();
    }
    let warm_total = eng.total_stepped();

    // Phase 1: active sparse rounds — tokens still alive.  Zero allocations,
    // and each round touches only the O(TOKEN_SEEDS) token receivers.
    let before = allocs();
    for _ in 0..20 {
        eng.step_round();
        assert!(
            eng.stepped_last_round() <= TOKEN_SEEDS as u64,
            "sparse round stepped {} nodes for {} live tokens",
            eng.stepped_last_round(),
            TOKEN_SEEDS
        );
    }
    let active_allocs = allocs() - before;
    assert_eq!(
        active_allocs, 0,
        "sparse active rounds allocated {active_allocs} times over 20 rounds"
    );
    // The 20 rounds together stepped O(frontier), nowhere near n.
    let stepped = eng.total_stepped() - warm_total;
    assert!(stepped > 0, "tokens died during warm-up");
    assert!(
        stepped <= (20 * TOKEN_SEEDS) as u64,
        "20 sparse rounds stepped {stepped} nodes on a {n}-node graph"
    );

    // Phase 2: run the hop budgets out, then measure fully idle rounds —
    // nobody steps, nothing allocates, the engine only advances the clock.
    for _ in 0..44 {
        eng.step_round();
    }
    let before = allocs();
    for _ in 0..10 {
        eng.step_round();
        assert_eq!(eng.stepped_last_round(), 0, "idle round stepped a node");
        assert_eq!(eng.last_stepped(), Some(&[][..]));
    }
    let idle_allocs = allocs() - before;
    assert_eq!(
        idle_allocs, 0,
        "sparse idle rounds allocated {idle_allocs} times over 10 rounds"
    );
    assert!(eng.is_quiescent());
}
