//! Event-driven engine for the **asynchronous** point-to-point network.
//!
//! The paper's base network model is asynchronous: a message sent over a link
//! arrives error-free after an *arbitrary but finite* delay.  Section 7.1
//! shows that the multiaccess channel can implement a synchronizer with O(1)
//! overhead, which is why the rest of the paper assumes synchrony.  This
//! engine exists to validate that claim experimentally (experiment E6): it
//! delivers every point-to-point message after a pseudo-random delay chosen
//! by a seeded adversary, while the channel remains slotted.
//!
//! Time is measured in *ticks*; one channel slot lasts [`AsyncConfig::slot_ticks`]
//! ticks and every message delay is between 1 tick and
//! [`AsyncConfig::max_delay_ticks`].  With `max_delay_ticks <= slot_ticks`
//! this matches the paper's normalisation ("the message delay and the slot
//! length are of the same order of magnitude").
//!
//! Like the synchronous engine, the hot path is allocation-free in steady
//! state, for `Copy` **and** heap-carrying payloads: in-flight payloads live
//! in a reference-counted slab with a free list, a broadcast interns its
//! payload **once** (each in-flight copy is a slab handle, each delivery a
//! reference-count decrement), deliveries hand the protocol a `&Msg` rather
//! than a clone, and retired heap payloads are parked in a graveyard that
//! [`AsyncCtx::recycle_payload`] hands back to senders.  Callback send
//! buffers are pooled, channel writes are tracked through a writers list,
//! and quiescence is O(1) via a done-node counter.

use crate::channel::{resolve_slot, SlotOutcome};
use crate::metrics::CostAccount;
use netsim_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Delay configuration of the asynchronous engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncConfig {
    /// Ticks per channel slot (≥ 1).
    pub slot_ticks: u64,
    /// Maximum point-to-point delay in ticks (≥ 1); actual delays are chosen
    /// uniformly in `1..=max_delay_ticks` by a seeded RNG.
    pub max_delay_ticks: u64,
    /// Seed of the delay adversary.
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            slot_ticks: 4,
            max_delay_ticks: 4,
            seed: 0,
        }
    }
}

/// Per-node handler interface of the asynchronous engine.
pub trait AsyncProtocol {
    /// Message type used on both media.
    type Msg: Clone;

    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Called when a point-to-point message arrives.
    ///
    /// The payload is borrowed from the engine's slab: a broadcast payload is
    /// stored once and every receiver observes the same `&Msg`.  Handlers
    /// that need ownership clone it (ideally into a buffer obtained from
    /// [`AsyncCtx::recycle_payload`]).
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Called at every slot boundary with the slot outcome (all nodes hear it).
    fn on_slot(&mut self, outcome: &SlotOutcome<Self::Msg>, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Local termination flag.
    ///
    /// As for the synchronous engine's O(1) quiescence tracking, the value
    /// must only change as a result of one of the callbacks above.
    fn is_done(&self) -> bool;
}

/// A send staged by a callback, in request order: the interleaving of
/// unicasts and broadcasts is preserved so delivery tie-breaks (event
/// sequence numbers) match the order the protocol issued them in.
#[derive(Debug)]
enum StagedSend<M> {
    /// `send(to, msg)`.
    One(NodeId, M),
    /// `send_all(msg)` — interned once, fanned out as slab handles.
    All(M),
}

/// Output collector handed to the [`AsyncProtocol`] callbacks.
///
/// The send buffer is pooled by the engine and drained after every callback,
/// so callbacks do not allocate in steady state.
#[derive(Debug)]
pub struct AsyncCtx<'a, M> {
    node: NodeId,
    tick: u64,
    neighbors: netsim_graph::Neighbors<'a>,
    sends: &'a mut Vec<StagedSend<M>>,
    graveyard: &'a mut Vec<M>,
    channel_write: Option<M>,
}

impl<'a, M: Clone> AsyncCtx<'a, M> {
    /// The executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current time in ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Incident links, as a CSR [`netsim_graph::Neighbors`] view.
    pub fn neighbors(&self) -> netsim_graph::Neighbors<'a> {
        self.neighbors
    }

    /// Takes a retired payload (heap capacity intact) from the engine's
    /// graveyard for reuse, if one is available.
    ///
    /// The asynchronous counterpart of
    /// [`RoundIo::recycle_payload`](crate::RoundIo::recycle_payload): a
    /// protocol that overwrites recycled buffers instead of constructing
    /// fresh ones sends heap-carrying messages without allocating.
    pub fn recycle_payload(&mut self) -> Option<M> {
        self.graveyard.pop()
    }

    /// Sends a message to a neighbour; it will arrive after an adversarial delay.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        self.sends.push(StagedSend::One(to, msg));
    }

    /// Sends a message to every neighbour.
    ///
    /// Intern-on-broadcast: the payload is stored in the slab **once**, with
    /// one reference per neighbour; no clones are made however large the
    /// degree.
    pub fn send_all(&mut self, msg: M) {
        if !self.neighbors.targets().is_empty() {
            self.sends.push(StagedSend::All(msg));
        }
    }

    /// Requests a channel write in the **current** slot (the one whose
    /// boundary has not yet passed).  Only the last request per slot counts.
    pub fn write_channel(&mut self, msg: M) {
        self.channel_write = Some(msg);
    }
}

/// One queued delivery: `(delivery tick, sequence, to, from, payload slot)`,
/// wrapped in `Reverse` so the `BinaryHeap` pops the earliest `(tick,
/// sequence)` first; the sequence keeps delivery order deterministic.
type FlightEvent = Reverse<(u64, u64, usize, usize, usize)>;

/// Reference-counted payload slab with a free list and a recycling
/// graveyard — the asynchronous sibling of
/// [`PayloadArena`](crate::PayloadArena).  Epochs make no sense here (each
/// in-flight payload dies at its own delivery tick), so slots are freed
/// individually when their reference count reaches zero.
#[derive(Debug)]
struct PayloadSlab<M> {
    /// Payload slots; `None` while the slot is free (or its payload is
    /// temporarily checked out for a delivery callback).
    slots: Vec<Option<M>>,
    /// Outstanding deliveries per slot, parallel to `slots`.
    refs: Vec<u32>,
    /// Free slots available for reuse.
    free: Vec<usize>,
    /// Retired heap payloads available to [`AsyncCtx::recycle_payload`];
    /// capped at the slab size, always empty for types without drop glue.
    graveyard: Vec<M>,
}

impl<M> PayloadSlab<M> {
    fn new() -> Self {
        PayloadSlab {
            slots: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
            graveyard: Vec::new(),
        }
    }

    /// Stores `payload` with `refs` outstanding deliveries; returns its slot.
    fn intern(&mut self, payload: M, refs: u32) -> usize {
        debug_assert!(refs > 0);
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(payload);
                self.refs[slot] = refs;
                slot
            }
            None => {
                self.slots.push(Some(payload));
                self.refs.push(refs);
                self.slots.len() - 1
            }
        }
    }

    /// Checks the payload out for one delivery (decrementing its reference
    /// count); [`PayloadSlab::check_in`] must follow.
    fn check_out(&mut self, slot: usize) -> M {
        self.refs[slot] -= 1;
        self.slots[slot].take().expect("payload stored")
    }

    /// Returns a checked-out payload: back into its slot while deliveries
    /// remain, to the free list + graveyard once the last one is done.
    fn check_in(&mut self, slot: usize, payload: M) {
        if self.refs[slot] > 0 {
            self.slots[slot] = Some(payload);
        } else {
            self.free.push(slot);
            if std::mem::needs_drop::<M>() && self.graveyard.len() < self.slots.len() {
                self.graveyard.push(payload);
            }
        }
    }
}

/// The asynchronous executor.
pub struct AsyncEngine<'g, P: AsyncProtocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    config: AsyncConfig,
    rng: StdRng,
    /// Min-heap of in-flight messages, ordered by `(tick, sequence)`.
    in_flight: BinaryHeap<FlightEvent>,
    /// Slab of in-flight payloads, indexed by the events' payload slots.
    slab: PayloadSlab<P::Msg>,
    seq: u64,
    /// Channel writes queued for the current slot: at most one per node.
    slot_writes: Vec<Option<P::Msg>>,
    /// Nodes with a queued write this slot, in request order.
    writers: Vec<NodeId>,
    /// Pooled callback send buffer.
    send_scratch: Vec<StagedSend<P::Msg>>,
    /// Pooled slot-resolution buffer.
    writes_scratch: Vec<(NodeId, P::Msg)>,
    tick: u64,
    cost: CostAccount,
    started: bool,
    /// Nodes currently reporting [`AsyncProtocol::is_done`].
    done_count: usize,
}

impl<'g, P: AsyncProtocol> AsyncEngine<'g, P> {
    /// Creates an engine over `graph` with per-node protocol states from `init`.
    pub fn new<F: FnMut(NodeId) -> P>(graph: &'g Graph, config: AsyncConfig, mut init: F) -> Self {
        assert!(config.slot_ticks >= 1, "slot_ticks must be at least 1");
        assert!(
            config.max_delay_ticks >= 1,
            "max_delay_ticks must be at least 1"
        );
        let nodes: Vec<P> = graph.nodes().map(&mut init).collect();
        let done_count = nodes.iter().filter(|p| p.is_done()).count();
        AsyncEngine {
            graph,
            nodes,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            in_flight: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            seq: 0,
            slot_writes: vec![None; graph.node_count()],
            writers: Vec::new(),
            send_scratch: Vec::new(),
            writes_scratch: Vec::new(),
            tick: 0,
            cost: CostAccount::new(),
            started: false,
            done_count,
        }
    }

    /// Cost account (rounds = slots elapsed).
    pub fn cost(&self) -> &CostAccount {
        &self.cost
    }

    /// Current time in ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Elapsed time in slot units (the paper's time unit).
    pub fn slots_elapsed(&self) -> u64 {
        self.tick / self.config.slot_ticks
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Immutable access to all node states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Total payload slots ever grown by the in-flight slab (its high-water
    /// mark); exposed so slab-reuse tests can assert boundedness.
    pub fn payload_slab_capacity(&self) -> usize {
        self.slab.slots.len()
    }

    /// Consumes the engine, returning the node states and the cost account.
    pub fn into_parts(self) -> (Vec<P>, CostAccount) {
        (self.nodes, self.cost)
    }

    /// Runs one protocol callback on node `v` with a pooled context, then
    /// folds its outputs (sends, channel write, done transition) back into
    /// the engine.
    fn dispatch<F>(&mut self, v: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut AsyncCtx<'_, P::Msg>),
    {
        let mut sends = std::mem::take(&mut self.send_scratch);
        let mut graveyard = std::mem::take(&mut self.slab.graveyard);
        let node = &mut self.nodes[v.index()];
        let was_done = node.is_done();
        let mut ctx = AsyncCtx {
            node: v,
            tick: self.tick,
            neighbors: self.graph.neighbors(v),
            sends: &mut sends,
            graveyard: &mut graveyard,
            channel_write: None,
        };
        f(node, &mut ctx);
        let channel_write = ctx.channel_write.take();
        drop(ctx);
        self.slab.graveyard = graveyard;
        let now_done = node.is_done();
        self.done_count = self
            .done_count
            .checked_add_signed(isize::from(now_done) - isize::from(was_done))
            .expect("done count balances");

        for staged in sends.drain(..) {
            match staged {
                StagedSend::One(to, msg) => {
                    let slot = self.slab.intern(msg, 1);
                    self.schedule(v, to, slot);
                }
                StagedSend::All(msg) => {
                    let targets = self.graph.neighbors(v).targets();
                    debug_assert!(!targets.is_empty());
                    let slot = self.slab.intern(msg, targets.len() as u32);
                    for &to in targets {
                        self.schedule(v, to, slot);
                    }
                }
            }
        }
        self.send_scratch = sends;

        if let Some(msg) = channel_write {
            let queued = &mut self.slot_writes[v.index()];
            if queued.is_none() {
                self.writers.push(v);
            }
            *queued = Some(msg);
        }
    }

    /// Queues one delivery of the payload in `slot` from `from` to `to`
    /// after a freshly drawn adversarial delay.
    fn schedule(&mut self, from: NodeId, to: NodeId, slot: usize) {
        let delay = self.rng.gen_range(1..=self.config.max_delay_ticks);
        let when = self.tick + delay;
        self.seq += 1;
        self.in_flight
            .push(Reverse((when, self.seq, to.index(), from.index(), slot)));
        self.cost.add_messages(1);
    }

    /// Returns `true` when every node is done, nothing is in flight, and no
    /// channel write is pending.  O(1).
    pub fn is_quiescent(&self) -> bool {
        self.done_count == self.nodes.len() && self.in_flight.is_empty() && self.writers.is_empty()
    }

    fn deliver_due(&mut self) {
        while let Some(&Reverse((when, _, _, _, _))) = self.in_flight.peek() {
            if when > self.tick {
                break;
            }
            let Reverse((_, _, to, from, slot)) = self.in_flight.pop().expect("peeked");
            // Check the payload out of the slab for the duration of the
            // callback (the callback may intern new payloads into the same
            // slab), then check it back in: it stays in its slot while other
            // deliveries of the same broadcast are outstanding and retires
            // to the free list + graveyard after the last one.
            let msg = self.slab.check_out(slot);
            self.dispatch(NodeId(to), |node, ctx| {
                node.on_message(NodeId(from), &msg, ctx)
            });
            self.slab.check_in(slot, msg);
        }
    }

    fn resolve_slot_boundary(&mut self) {
        let mut writes = std::mem::take(&mut self.writes_scratch);
        debug_assert!(writes.is_empty());
        for i in 0..self.writers.len() {
            let v = self.writers[i];
            let msg = self.slot_writes[v.index()].take().expect("queued write");
            writes.push((v, msg));
        }
        self.writers.clear();
        let outcome = resolve_slot(&writes);
        self.cost.add_slot(writes.len() as u64);
        writes.clear();
        self.writes_scratch = writes;
        for v in self.graph.nodes() {
            self.dispatch(v, |node, ctx| node.on_slot(&outcome, ctx));
        }
    }

    /// Runs until quiescence or until `max_ticks` ticks have elapsed.
    /// Returns `true` when the run completed.
    pub fn run(&mut self, max_ticks: u64) -> bool {
        if !self.started {
            self.started = true;
            for v in self.graph.nodes() {
                self.dispatch(v, |node, ctx| node.on_start(ctx));
            }
        }
        while self.tick < max_ticks {
            if self.is_quiescent() {
                return true;
            }
            self.tick += 1;
            self.deliver_due();
            if self.tick.is_multiple_of(self.config.slot_ticks) {
                self.resolve_slot_boundary();
            }
        }
        self.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::generators;

    /// Node 0 sends a token to all neighbours; every receiver acknowledges on
    /// the channel (colliding is fine, we only check delivery).
    struct PingAll {
        id: NodeId,
        got: bool,
        started: bool,
    }

    impl AsyncProtocol for PingAll {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u32>) {
            if self.id == NodeId(0) {
                ctx.send_all(7);
                self.started = true;
                self.got = true;
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: &u32, _ctx: &mut AsyncCtx<'_, u32>) {
            assert_eq!(*msg, 7);
            self.got = true;
        }
        fn on_slot(&mut self, _o: &SlotOutcome<u32>, _ctx: &mut AsyncCtx<'_, u32>) {}
        fn is_done(&self) -> bool {
            self.got
        }
    }

    #[test]
    fn messages_arrive_despite_delays() {
        let g = generators::star(6);
        let cfg = AsyncConfig {
            slot_ticks: 3,
            max_delay_ticks: 3,
            seed: 42,
        };
        let mut eng = AsyncEngine::new(&g, cfg, |id| PingAll {
            id,
            got: false,
            started: false,
        });
        assert!(eng.run(1000));
        for v in g.nodes() {
            assert!(eng.node(v).got, "node {v} did not receive the token");
        }
        assert_eq!(eng.cost().p2p_messages, 5);
        assert!(eng.tick() <= 3, "delays are bounded by max_delay_ticks");
        // The broadcast was interned once, not five times.
        assert_eq!(eng.payload_slab_capacity(), 1);
    }

    /// All nodes write once; the slot must resolve as a collision for n >= 2.
    struct WriteOnce {
        wrote: bool,
        saw: Option<bool>,
    }
    impl AsyncProtocol for WriteOnce {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u8>) {
            ctx.write_channel(1);
            self.wrote = true;
        }
        fn on_message(&mut self, _f: NodeId, _m: &u8, _c: &mut AsyncCtx<'_, u8>) {}
        fn on_slot(&mut self, o: &SlotOutcome<u8>, _c: &mut AsyncCtx<'_, u8>) {
            if self.saw.is_none() {
                self.saw = Some(o.is_collision());
            }
        }
        fn is_done(&self) -> bool {
            self.saw.is_some()
        }
    }

    #[test]
    fn slot_boundaries_resolve_collisions() {
        let g = generators::ring(5);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |_| WriteOnce {
            wrote: false,
            saw: None,
        });
        assert!(eng.run(100));
        for v in g.nodes() {
            assert_eq!(eng.node(v).saw, Some(true));
        }
        assert_eq!(eng.cost().slots_collision, 1);
        assert!(eng.slots_elapsed() >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_connected(20, 0.2, 3);
        let cfg = AsyncConfig {
            slot_ticks: 4,
            max_delay_ticks: 4,
            seed: 11,
        };
        let run = |cfg: AsyncConfig| {
            let mut eng = AsyncEngine::new(&g, cfg, |id| PingAll {
                id,
                got: false,
                started: false,
            });
            eng.run(10_000);
            (eng.tick(), eng.cost().p2p_messages)
        };
        assert_eq!(run(cfg), run(cfg));
    }

    /// A write in every slot and steady message churn: exercises the payload
    /// slab free list and the writers list over many slots.
    struct Chatter {
        id: NodeId,
        slots_seen: u32,
        target: u32,
    }
    impl AsyncProtocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u64>) {
            ctx.send_all(0);
            if self.id == NodeId(0) {
                ctx.write_channel(0);
            }
        }
        fn on_message(&mut self, _f: NodeId, hops: &u64, ctx: &mut AsyncCtx<'_, u64>) {
            if *hops < 50 {
                ctx.send(ctx.neighbors().target(0), *hops + 1);
            }
        }
        fn on_slot(&mut self, _o: &SlotOutcome<u64>, ctx: &mut AsyncCtx<'_, u64>) {
            self.slots_seen += 1;
            if self.id == NodeId(0) && self.slots_seen < self.target {
                ctx.write_channel(u64::from(self.slots_seen));
            }
        }
        fn is_done(&self) -> bool {
            self.slots_seen >= self.target
        }
    }

    #[test]
    fn slab_and_writers_recycle_across_slots() {
        let g = generators::ring(6);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| Chatter {
            id,
            slots_seen: 0,
            target: 20,
        });
        assert!(eng.run(1_000_000));
        assert!(eng.cost().slots_success >= 19);
        assert!(eng.is_quiescent());
        // Every payload slot must have been recycled back to the free list.
        assert_eq!(eng.slab.free.len(), eng.slab.slots.len());
        assert!(eng.slab.slots.iter().all(Option::is_none));
        assert!(eng.slab.refs.iter().all(|&r| r == 0));
    }

    /// Broadcast payloads are shared: every receiver must observe the same
    /// value, the slab must hold one slot per *broadcast* (not per
    /// delivery), and the slot must be freed only after the last delivery.
    struct ShareCheck {
        id: NodeId,
        rounds: u64,
        heard: u64,
    }
    impl AsyncProtocol for ShareCheck {
        type Msg = Vec<u64>;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Vec<u64>>) {
            if self.id == NodeId(0) {
                ctx.send_all(vec![0, 42]);
                self.rounds = 1;
            }
        }
        fn on_message(&mut self, _f: NodeId, msg: &Vec<u64>, _c: &mut AsyncCtx<'_, Vec<u64>>) {
            assert_eq!(msg[1], 42, "shared broadcast payload corrupted");
            self.heard += 1;
        }
        fn on_slot(&mut self, _o: &SlotOutcome<Vec<u64>>, ctx: &mut AsyncCtx<'_, Vec<u64>>) {
            if self.id == NodeId(0) && self.rounds < 9 {
                let mut frame = ctx.recycle_payload().unwrap_or_default();
                frame.clear();
                frame.extend_from_slice(&[self.rounds, 42]);
                ctx.send_all(frame);
                self.rounds += 1;
            }
        }
        fn is_done(&self) -> bool {
            self.id != NodeId(0) || self.rounds >= 9
        }
    }

    #[test]
    fn broadcast_interns_once_and_recycles() {
        let g = generators::complete(8);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| ShareCheck {
            id,
            rounds: 0,
            heard: 0,
        });
        assert!(eng.run(100_000));
        // 9 broadcasts of degree 7 = 63 deliveries, but the slab holds one
        // slot per *broadcast*, and delays (≤ 1 slot) keep at most a couple
        // of broadcasts in flight at once — far fewer slots than deliveries.
        assert_eq!(eng.cost().p2p_messages, 9 * 7);
        assert!(
            eng.payload_slab_capacity() <= 4,
            "slab grew one slot per delivery: {}",
            eng.payload_slab_capacity()
        );
        let heard: u64 = g.nodes().map(|v| eng.node(v).heard).sum();
        assert_eq!(heard, 9 * 7);
    }

    #[test]
    #[should_panic]
    fn zero_slot_ticks_rejected() {
        let g = generators::path(2);
        let cfg = AsyncConfig {
            slot_ticks: 0,
            max_delay_ticks: 1,
            seed: 0,
        };
        let _ = AsyncEngine::new(&g, cfg, |id| PingAll {
            id,
            got: false,
            started: false,
        });
    }
}
