//! Event-driven engine for the **asynchronous** point-to-point network.
//!
//! The paper's base network model is asynchronous: a message sent over a link
//! arrives error-free after an *arbitrary but finite* delay.  Section 7.1
//! shows that the multiaccess channel can implement a synchronizer with O(1)
//! overhead, which is why the rest of the paper assumes synchrony.  This
//! engine exists to validate that claim experimentally (experiment E6): it
//! delivers every point-to-point message after a pseudo-random delay chosen
//! by a seeded adversary, while the channel remains slotted.
//!
//! Time is measured in *ticks*; one channel slot lasts [`AsyncConfig::slot_ticks`]
//! ticks and every message delay is between 1 tick and
//! [`AsyncConfig::max_delay_ticks`].  With `max_delay_ticks <= slot_ticks`
//! this matches the paper's normalisation ("the message delay and the slot
//! length are of the same order of magnitude").

use crate::channel::{resolve_slot, SlotOutcome};
use crate::metrics::CostAccount;
use netsim_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Delay configuration of the asynchronous engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncConfig {
    /// Ticks per channel slot (≥ 1).
    pub slot_ticks: u64,
    /// Maximum point-to-point delay in ticks (≥ 1); actual delays are chosen
    /// uniformly in `1..=max_delay_ticks` by a seeded RNG.
    pub max_delay_ticks: u64,
    /// Seed of the delay adversary.
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            slot_ticks: 4,
            max_delay_ticks: 4,
            seed: 0,
        }
    }
}

/// Per-node handler interface of the asynchronous engine.
pub trait AsyncProtocol {
    /// Message type used on both media.
    type Msg: Clone;

    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Called when a point-to-point message arrives.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Called at every slot boundary with the slot outcome (all nodes hear it).
    fn on_slot(&mut self, outcome: &SlotOutcome<Self::Msg>, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Local termination flag.
    fn is_done(&self) -> bool;
}

/// Output collector handed to the [`AsyncProtocol`] callbacks.
#[derive(Debug)]
pub struct AsyncCtx<'a, M> {
    node: NodeId,
    tick: u64,
    neighbors: &'a [(NodeId, netsim_graph::EdgeId)],
    sends: Vec<(NodeId, M)>,
    channel_write: Option<M>,
}

impl<'a, M: Clone> AsyncCtx<'a, M> {
    /// The executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current time in ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Incident links.
    pub fn neighbors(&self) -> &[(NodeId, netsim_graph::EdgeId)] {
        self.neighbors
    }

    /// Sends a message to a neighbour; it will arrive after an adversarial delay.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.iter().any(|&(v, _)| v == to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        self.sends.push((to, msg));
    }

    /// Sends a message to every neighbour.
    pub fn send_all(&mut self, msg: M) {
        let targets: Vec<NodeId> = self.neighbors.iter().map(|&(v, _)| v).collect();
        for t in targets {
            self.sends.push((t, msg.clone()));
        }
    }

    /// Requests a channel write in the **current** slot (the one whose
    /// boundary has not yet passed).  Only the last request per slot counts.
    pub fn write_channel(&mut self, msg: M) {
        self.channel_write = Some(msg);
    }
}

/// The asynchronous executor.
pub struct AsyncEngine<'g, P: AsyncProtocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    config: AsyncConfig,
    rng: StdRng,
    /// (delivery tick, sequence, to, from); payload kept alongside.
    in_flight: BinaryHeap<Reverse<(u64, u64, usize, usize)>>,
    payloads: std::collections::HashMap<u64, P::Msg>,
    seq: u64,
    /// Channel writes queued for the current slot: one slot-write per node at most.
    slot_writes: Vec<Option<P::Msg>>,
    tick: u64,
    cost: CostAccount,
    started: bool,
}

impl<'g, P: AsyncProtocol> AsyncEngine<'g, P> {
    /// Creates an engine over `graph` with per-node protocol states from `init`.
    pub fn new<F: FnMut(NodeId) -> P>(graph: &'g Graph, config: AsyncConfig, mut init: F) -> Self {
        assert!(config.slot_ticks >= 1, "slot_ticks must be at least 1");
        assert!(config.max_delay_ticks >= 1, "max_delay_ticks must be at least 1");
        let nodes = graph.nodes().map(&mut init).collect();
        AsyncEngine {
            graph,
            nodes,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            in_flight: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            slot_writes: vec![None; graph.node_count()],
            tick: 0,
            cost: CostAccount::new(),
            started: false,
        }
    }

    /// Cost account (rounds = slots elapsed).
    pub fn cost(&self) -> &CostAccount {
        &self.cost
    }

    /// Current time in ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Elapsed time in slot units (the paper's time unit).
    pub fn slots_elapsed(&self) -> u64 {
        self.tick / self.config.slot_ticks
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Immutable access to all node states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the engine, returning the node states and the cost account.
    pub fn into_parts(self) -> (Vec<P>, CostAccount) {
        (self.nodes, self.cost)
    }

    fn collect_ctx(&mut self, node: NodeId, ctx: AsyncCtx<'_, P::Msg>) {
        let AsyncCtx {
            sends,
            channel_write,
            ..
        } = ctx;
        for (to, msg) in sends {
            let delay = self.rng.gen_range(1..=self.config.max_delay_ticks);
            let when = self.tick + delay;
            self.seq += 1;
            self.payloads.insert(self.seq, msg);
            self.in_flight
                .push(Reverse((when, self.seq, to.index(), node.index())));
            self.cost.add_messages(1);
        }
        if let Some(msg) = channel_write {
            self.slot_writes[node.index()] = Some(msg);
        }
    }

    fn make_ctx(&self, node: NodeId) -> AsyncCtx<'g, P::Msg> {
        AsyncCtx {
            node,
            tick: self.tick,
            neighbors: self.graph.neighbors(node),
            sends: Vec::new(),
            channel_write: None,
        }
    }

    /// Returns `true` when every node is done, nothing is in flight, and no
    /// channel write is pending.
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(P::is_done)
            && self.in_flight.is_empty()
            && self.slot_writes.iter().all(Option::is_none)
    }

    fn deliver_due(&mut self) {
        loop {
            match self.in_flight.peek() {
                Some(&Reverse((when, _, _, _))) if when <= self.tick => {}
                _ => break,
            }
            let Reverse((_, seq, to, from)) = self.in_flight.pop().expect("peeked");
            let msg = self.payloads.remove(&seq).expect("payload stored");
            let mut ctx = self.make_ctx(NodeId(to));
            self.nodes[to].on_message(NodeId(from), msg, &mut ctx);
            self.collect_ctx(NodeId(to), ctx);
        }
    }

    fn resolve_slot_boundary(&mut self) {
        let writes: Vec<(NodeId, P::Msg)> = self
            .slot_writes
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.clone().map(|m| (NodeId(i), m)))
            .collect();
        for w in &mut self.slot_writes {
            *w = None;
        }
        let outcome = resolve_slot(&writes);
        self.cost.add_slot(writes.len() as u64);
        for v in self.graph.nodes() {
            let mut ctx = self.make_ctx(v);
            self.nodes[v.index()].on_slot(&outcome, &mut ctx);
            self.collect_ctx(v, ctx);
        }
    }

    /// Runs until quiescence or until `max_ticks` ticks have elapsed.
    /// Returns `true` when the run completed.
    pub fn run(&mut self, max_ticks: u64) -> bool {
        if !self.started {
            self.started = true;
            for v in self.graph.nodes() {
                let mut ctx = self.make_ctx(v);
                self.nodes[v.index()].on_start(&mut ctx);
                self.collect_ctx(v, ctx);
            }
        }
        while self.tick < max_ticks {
            if self.is_quiescent() {
                return true;
            }
            self.tick += 1;
            self.deliver_due();
            if self.tick % self.config.slot_ticks == 0 {
                self.resolve_slot_boundary();
            }
        }
        self.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::generators;

    /// Node 0 sends a token to all neighbours; every receiver acknowledges on
    /// the channel (colliding is fine, we only check delivery).
    struct PingAll {
        id: NodeId,
        got: bool,
        started: bool,
    }

    impl AsyncProtocol for PingAll {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u32>) {
            if self.id == NodeId(0) {
                ctx.send_all(7);
                self.started = true;
                self.got = true;
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, _ctx: &mut AsyncCtx<'_, u32>) {
            assert_eq!(msg, 7);
            self.got = true;
        }
        fn on_slot(&mut self, _o: &SlotOutcome<u32>, _ctx: &mut AsyncCtx<'_, u32>) {}
        fn is_done(&self) -> bool {
            self.got
        }
    }

    #[test]
    fn messages_arrive_despite_delays() {
        let g = generators::star(6);
        let cfg = AsyncConfig {
            slot_ticks: 3,
            max_delay_ticks: 3,
            seed: 42,
        };
        let mut eng = AsyncEngine::new(&g, cfg, |id| PingAll {
            id,
            got: false,
            started: false,
        });
        assert!(eng.run(1000));
        for v in g.nodes() {
            assert!(eng.node(v).got, "node {v} did not receive the token");
        }
        assert_eq!(eng.cost().p2p_messages, 5);
        assert!(eng.tick() <= 3, "delays are bounded by max_delay_ticks");
    }

    /// All nodes write once; the slot must resolve as a collision for n >= 2.
    struct WriteOnce {
        wrote: bool,
        saw: Option<bool>,
    }
    impl AsyncProtocol for WriteOnce {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u8>) {
            ctx.write_channel(1);
            self.wrote = true;
        }
        fn on_message(&mut self, _f: NodeId, _m: u8, _c: &mut AsyncCtx<'_, u8>) {}
        fn on_slot(&mut self, o: &SlotOutcome<u8>, _c: &mut AsyncCtx<'_, u8>) {
            if self.saw.is_none() {
                self.saw = Some(o.is_collision());
            }
        }
        fn is_done(&self) -> bool {
            self.saw.is_some()
        }
    }

    #[test]
    fn slot_boundaries_resolve_collisions() {
        let g = generators::ring(5);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |_| WriteOnce {
            wrote: false,
            saw: None,
        });
        assert!(eng.run(100));
        for v in g.nodes() {
            assert_eq!(eng.node(v).saw, Some(true));
        }
        assert_eq!(eng.cost().slots_collision, 1);
        assert!(eng.slots_elapsed() >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_connected(20, 0.2, 3);
        let cfg = AsyncConfig {
            slot_ticks: 4,
            max_delay_ticks: 4,
            seed: 11,
        };
        let run = |cfg: AsyncConfig| {
            let mut eng = AsyncEngine::new(&g, cfg, |id| PingAll {
                id,
                got: false,
                started: false,
            });
            eng.run(10_000);
            (eng.tick(), eng.cost().p2p_messages)
        };
        assert_eq!(run(cfg), run(cfg));
    }

    #[test]
    #[should_panic]
    fn zero_slot_ticks_rejected() {
        let g = generators::path(2);
        let cfg = AsyncConfig {
            slot_ticks: 0,
            max_delay_ticks: 1,
            seed: 0,
        };
        let _ = AsyncEngine::new(&g, cfg, |id| PingAll {
            id,
            got: false,
            started: false,
        });
    }
}
