//! Event-driven engine for the **asynchronous** point-to-point network.
//!
//! The paper's base network model is asynchronous: a message sent over a link
//! arrives error-free after an *arbitrary but finite* delay.  Section 7.1
//! shows that the multiaccess channel can implement a synchronizer with O(1)
//! overhead, which is why the rest of the paper assumes synchrony.  This
//! engine exists to validate that claim experimentally (experiment E6): it
//! delivers every point-to-point message after a pseudo-random delay chosen
//! by a seeded adversary, while the channel remains slotted.
//!
//! Time is measured in *ticks*; one channel slot lasts [`AsyncConfig::slot_ticks`]
//! ticks and every message delay is between 1 tick and
//! [`AsyncConfig::max_delay_ticks`].  With `max_delay_ticks <= slot_ticks`
//! this matches the paper's normalisation ("the message delay and the slot
//! length are of the same order of magnitude").
//!
//! Like the synchronous engine, the hot path is allocation-free in steady
//! state, for `Copy` **and** heap-carrying payloads: in-flight payloads live
//! in a reference-counted slab with a free list, a broadcast interns its
//! payload **once** (each in-flight copy is a slab handle, each delivery a
//! reference-count decrement), deliveries hand the protocol a `&Msg` rather
//! than a clone, and retired heap payloads are parked in a graveyard that
//! [`AsyncCtx::recycle_payload`] hands back to senders.  Callback send
//! buffers are pooled, channel writes are tracked through a writers list,
//! and quiescence is O(1) via a done-node counter.
//!
//! The multiaccess medium is a [`ChannelSet`]: each slot boundary resolves
//! one slot per channel and delivers every outcome through
//! [`AsyncProtocol::on_slot_on`] (default: route channel 0 to
//! [`AsyncProtocol::on_slot`]).  A `Success` slot **moves** the winning
//! message into its outcome — never cloned — and parks it in the graveyard
//! afterwards, mirroring the synchronous engine's handle-based outcomes.

use crate::channel::{ChannelId, ChannelSet, LaneOutcome, SlotOutcome};
use crate::fault::{FaultPlan, FaultSession, NodeLifecycle};
use crate::metrics::CostAccount;
use netsim_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Delay configuration of the asynchronous engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsyncConfig {
    /// Ticks per channel slot (≥ 1).
    pub slot_ticks: u64,
    /// Maximum point-to-point delay in ticks (≥ 1); actual delays are chosen
    /// uniformly in `1..=max_delay_ticks` by a seeded RNG.
    pub max_delay_ticks: u64,
    /// Seed of the delay adversary.
    pub seed: u64,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            slot_ticks: 4,
            max_delay_ticks: 4,
            seed: 0,
        }
    }
}

/// Per-node handler interface of the asynchronous engine.
pub trait AsyncProtocol {
    /// Message type used on both media.
    type Msg: Clone;

    /// Called once at time 0.
    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Called when a point-to-point message arrives.
    ///
    /// The payload is borrowed from the engine's slab: a broadcast payload is
    /// stored once and every receiver observes the same `&Msg`.  Handlers
    /// that need ownership clone it (ideally into a buffer obtained from
    /// [`AsyncCtx::recycle_payload`]).
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut AsyncCtx<'_, Self::Msg>);

    /// Called at every slot boundary with the slot outcome of the
    /// **default** channel (all attached nodes hear it).
    ///
    /// Defaults to ignoring the outcome, so protocols that listen per
    /// channel through [`AsyncProtocol::on_slot_on`] (or do not use the
    /// channel at all) need no dead stub.
    fn on_slot(&mut self, outcome: &SlotOutcome<Self::Msg>, ctx: &mut AsyncCtx<'_, Self::Msg>) {
        let _ = (outcome, ctx);
    }

    /// Called at every slot boundary once **per channel** of the engine's
    /// [`ChannelSet`], in ascending channel order (a node not attached to a
    /// channel observes [`SlotOutcome::Idle`] on it).
    ///
    /// The default implementation routes the default channel's outcome to
    /// [`AsyncProtocol::on_slot`] and ignores the rest, so single-channel
    /// protocols run unchanged on any channel set; multi-channel protocols
    /// override this method instead.
    fn on_slot_on(
        &mut self,
        chan: ChannelId,
        outcome: &SlotOutcome<Self::Msg>,
        ctx: &mut AsyncCtx<'_, Self::Msg>,
    ) {
        if chan == ChannelId::DEFAULT {
            self.on_slot(outcome, ctx);
        }
    }

    /// Called at every slot boundary once **per channel** with the channel's
    /// lane sub-slot outcome (the word-wide OR-merge surface; see
    /// [`RoundIo::prev_lanes_on`](crate::RoundIo::prev_lanes_on)), in
    /// ascending channel order and **before** any of the boundary's
    /// [`AsyncProtocol::on_slot_on`] calls, so adapters that step on the
    /// last message-slot callback observe the boundary's lanes too.  A node
    /// not attached to a channel observes [`LaneOutcome::Idle`].  Defaults
    /// to ignoring the outcome.
    fn on_lanes_on(
        &mut self,
        chan: ChannelId,
        lanes: &LaneOutcome,
        ctx: &mut AsyncCtx<'_, Self::Msg>,
    ) {
        let _ = (chan, lanes, ctx);
    }

    /// Local termination flag.
    ///
    /// As for the synchronous engine's O(1) quiescence tracking, the value
    /// must only change as a result of one of the callbacks above (or of
    /// [`AsyncProtocol::on_recover`]).
    fn is_done(&self) -> bool;

    /// Called when this node transitions `Crashed → Booting` under an
    /// installed [`FaultPlan`] — the hook re-initialises whatever state the
    /// crash invalidated.  The node receives callbacks again from the next
    /// tick on.  Defaults to doing nothing (crash-oblivious protocols keep
    /// their state).
    fn on_recover(&mut self) {}
}

/// A send staged by a callback, in request order: the interleaving of
/// unicasts and broadcasts is preserved so delivery tie-breaks (event
/// sequence numbers) match the order the protocol issued them in.
#[derive(Debug)]
enum StagedSend<M> {
    /// `send(to, msg)`.
    One(NodeId, M),
    /// `send_all(msg)` — interned once, fanned out as slab handles.
    All(M),
}

/// Output collector handed to the [`AsyncProtocol`] callbacks.
///
/// The send buffer is pooled by the engine and drained after every callback,
/// so callbacks do not allocate in steady state.
#[derive(Debug)]
pub struct AsyncCtx<'a, M> {
    node: NodeId,
    tick: u64,
    neighbors: netsim_graph::Neighbors<'a>,
    sends: &'a mut Vec<StagedSend<M>>,
    graveyard: &'a mut Vec<M>,
    /// Channel writes staged by this callback (pooled engine scratch).
    chan_writes: &'a mut Vec<(ChannelId, M)>,
    /// Lane writes staged by this callback (pooled engine scratch).
    lane_writes: &'a mut Vec<(ChannelId, u64)>,
    /// Channel count of the engine's [`ChannelSet`].
    k: u16,
    /// Attachment bitmask of this node.
    attached: u64,
    /// Set by [`AsyncCtx::wake_me`]; the engine folds it into the sparse
    /// boundary-dispatch set (ignored under dense dispatch).
    woken: &'a mut bool,
}

impl<'a, M: Clone> AsyncCtx<'a, M> {
    /// The executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current time in ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Incident links, as a CSR [`netsim_graph::Neighbors`] view.
    pub fn neighbors(&self) -> netsim_graph::Neighbors<'a> {
        self.neighbors
    }

    /// Takes a retired payload (heap capacity intact) from the engine's
    /// graveyard for reuse, if one is available.
    ///
    /// The asynchronous counterpart of
    /// [`RoundIo::recycle_payload`](crate::RoundIo::recycle_payload): a
    /// protocol that overwrites recycled buffers instead of constructing
    /// fresh ones sends heap-carrying messages without allocating.
    pub fn recycle_payload(&mut self) -> Option<M> {
        self.graveyard.pop()
    }

    /// Sends a message to a neighbour; it will arrive after an adversarial delay.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        self.sends.push(StagedSend::One(to, msg));
    }

    /// Sends a message to every neighbour.
    ///
    /// Intern-on-broadcast: the payload is stored in the slab **once**, with
    /// one reference per neighbour; no clones are made however large the
    /// degree.
    pub fn send_all(&mut self, msg: M) {
        if !self.neighbors.targets().is_empty() {
            self.sends.push(StagedSend::All(msg));
        }
    }

    /// Requests a write on the **default** channel in the current slot (the
    /// one whose boundary has not yet passed); sugar for
    /// [`AsyncCtx::write_channel_on`].
    pub fn write_channel(&mut self, msg: M) {
        self.write_channel_on(ChannelId::DEFAULT, msg);
    }

    /// Requests a write on channel `chan` in the current slot.  Only the
    /// last request per channel per slot counts.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's
    /// [`ChannelSet`] or this node is not attached to it.
    pub fn write_channel_on(&mut self, chan: ChannelId, msg: M) {
        assert!(
            chan.0 < self.k,
            "{:?} wrote to {chan:?} of a {}-channel set",
            self.node,
            self.k
        );
        assert!(
            self.attached & (1 << chan.0) != 0,
            "{:?} attempted to write to unattached {chan:?}",
            self.node
        );
        self.chan_writes.push((chan, msg));
    }

    /// Stages a lane write on channel `chan` for the current slot: the
    /// bitwise OR of every attached writer's word resolves at the next slot
    /// boundary ([`AsyncProtocol::on_lanes_on`]).  Repeated writes by the
    /// same node OR-merge — the asynchronous counterpart of
    /// [`RoundIo::write_lanes_on`](crate::RoundIo::write_lanes_on).
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's [`ChannelSet`] or
    /// this node is not attached to it.
    pub fn write_lanes_on(&mut self, chan: ChannelId, word: u64) {
        assert!(
            chan.0 < self.k,
            "{:?} wrote lanes on {chan:?} of a {}-channel set",
            self.node,
            self.k
        );
        assert!(
            self.attached & (1 << chan.0) != 0,
            "{:?} attempted to write lanes on unattached {chan:?}",
            self.node
        );
        self.lane_writes.push((chan, word));
    }

    /// Schedules this node for dispatch at the **next slot boundary**.
    ///
    /// The asynchronous counterpart of
    /// [`RoundIo::wake_me`](crate::RoundIo::wake_me): under sparse boundary
    /// dispatch ([`AsyncEngine::enable_sparse_boundaries`]) a node receives
    /// the boundary's `on_slot_on` callbacks only if it heard a non-idle
    /// outcome on an attached channel, received a message since the last
    /// boundary, had a lifecycle transition, or called `wake_me`.  A
    /// protocol that advances timers on all-idle boundaries must therefore
    /// re-arm itself with `wake_me` while unfinished.  Wakeup requests are
    /// part of the determinism tuple, and `wake_me` does not prevent
    /// quiescence — exactly as for the synchronous engines.  No-op under
    /// dense dispatch.
    pub fn wake_me(&mut self) {
        *self.woken = true;
    }

    /// Number of channels `K` of the engine's [`ChannelSet`].
    pub fn channels(&self) -> u16 {
        self.k
    }

    /// Returns `true` when this node is attached to channel `chan`.
    pub fn is_attached(&self, chan: ChannelId) -> bool {
        chan.0 < self.k && self.attached & (1 << chan.0) != 0
    }
}

/// One queued delivery: `(delivery tick, sequence, to, from, payload slot)`,
/// wrapped in `Reverse` so the `BinaryHeap` pops the earliest `(tick,
/// sequence)` first; the sequence keeps delivery order deterministic.
type FlightEvent = Reverse<(u64, u64, usize, usize, usize)>;

/// Reference-counted payload slab with a free list and a recycling
/// graveyard — the asynchronous sibling of
/// [`PayloadArena`](crate::PayloadArena).  Epochs make no sense here (each
/// in-flight payload dies at its own delivery tick), so slots are freed
/// individually when their reference count reaches zero.
#[derive(Debug)]
struct PayloadSlab<M> {
    /// Payload slots; `None` while the slot is free (or its payload is
    /// temporarily checked out for a delivery callback).
    slots: Vec<Option<M>>,
    /// Outstanding deliveries per slot, parallel to `slots`.
    refs: Vec<u32>,
    /// Free slots available for reuse.
    free: Vec<usize>,
    /// Retired heap payloads available to [`AsyncCtx::recycle_payload`];
    /// capped at the slab size, always empty for types without drop glue.
    graveyard: Vec<M>,
}

impl<M> PayloadSlab<M> {
    fn new() -> Self {
        PayloadSlab {
            slots: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
            graveyard: Vec::new(),
        }
    }

    /// Stores `payload` with `refs` outstanding deliveries; returns its slot.
    fn intern(&mut self, payload: M, refs: u32) -> usize {
        debug_assert!(refs > 0);
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(payload);
                self.refs[slot] = refs;
                slot
            }
            None => {
                self.slots.push(Some(payload));
                self.refs.push(refs);
                self.slots.len() - 1
            }
        }
    }

    /// Checks the payload out for one delivery (decrementing its reference
    /// count); [`PayloadSlab::check_in`] must follow.
    fn check_out(&mut self, slot: usize) -> M {
        self.refs[slot] -= 1;
        self.slots[slot].take().expect("payload stored")
    }

    /// Returns a checked-out payload: back into its slot while deliveries
    /// remain, to the free list + graveyard once the last one is done.
    fn check_in(&mut self, slot: usize, payload: M) {
        if self.refs[slot] > 0 {
            self.slots[slot] = Some(payload);
        } else {
            self.free.push(slot);
            self.park(payload, 0);
        }
    }

    /// Parks a retired payload in the graveyard for
    /// [`AsyncCtx::recycle_payload`], capped at `max(slab size, min_cap)`
    /// entries — channel-only workloads (empty slab) pass the channel count
    /// as `min_cap` so retired slot winners stay recyclable.
    fn park(&mut self, payload: M, min_cap: usize) {
        if std::mem::needs_drop::<M>() && self.graveyard.len() < self.slots.len().max(min_cap) {
            self.graveyard.push(payload);
        }
    }
}

/// The asynchronous executor.
pub struct AsyncEngine<'g, P: AsyncProtocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    config: AsyncConfig,
    /// The multiaccess channel substrate: `K` channels + per-node attachment.
    channels: ChannelSet,
    rng: StdRng,
    /// Min-heap of in-flight messages, ordered by `(tick, sequence)`.
    in_flight: BinaryHeap<FlightEvent>,
    /// Slab of in-flight payloads, indexed by the events' payload slots.
    slab: PayloadSlab<P::Msg>,
    seq: u64,
    /// Channel writes queued for the current slot: at most one per node and
    /// channel, at `slot_writes[v * K + c]`.
    slot_writes: Vec<Option<P::Msg>>,
    /// `(node, channel)` pairs with a queued write this slot, in request order.
    writers: Vec<(NodeId, ChannelId)>,
    /// Lane words queued for the current slot: at most one (OR-merged) word
    /// per node and channel, at `lane_slot_writes[v * K + c]`.
    lane_slot_writes: Vec<Option<u64>>,
    /// `(node, channel)` pairs with a queued lane write this slot, in
    /// request order.
    lane_writers: Vec<(NodeId, ChannelId)>,
    /// Pooled callback send buffer.
    send_scratch: Vec<StagedSend<P::Msg>>,
    /// Pooled callback channel-write buffer.
    chan_write_scratch: Vec<(ChannelId, P::Msg)>,
    /// Pooled callback lane-write buffer.
    lane_write_scratch: Vec<(ChannelId, u64)>,
    /// Pooled per-boundary lane outcomes, one per channel.
    lane_scratch: Vec<LaneOutcome>,
    /// Pooled per-channel lane writer counters; length `K`.
    lane_counts: Vec<u32>,
    /// Pooled per-boundary slot outcomes, one per channel.  The winners are
    /// **moved** in from `slot_writes` (never cloned) and parked in the slab
    /// graveyard after the boundary's callbacks, so heap payloads written to
    /// a channel are recycled like any delivered message.
    outcome_scratch: Vec<SlotOutcome<P::Msg>>,
    /// Pooled per-channel writer counters; length `K`.
    chan_counts: Vec<u32>,
    tick: u64,
    cost: CostAccount,
    /// Per-channel breakdown of the channel-scoped counters in `cost`;
    /// length `K`.  Under the lockstep configuration it matches the
    /// synchronous engines' after
    /// [`reconciled_channel_costs`](crate::lockstep::reconciled_channel_costs).
    chan_cost: Vec<CostAccount>,
    started: bool,
    /// Nodes currently reporting [`AsyncProtocol::is_done`].
    done_count: usize,
    /// Injected-fault session, when [`AsyncEngine::set_fault_plan`]
    /// installed one.  Fault *rounds* advance once per tick.
    faults: Option<FaultSession>,
    /// Nodes in an exempt lifecycle state (`Off` / `Crashed`) that are not
    /// done; keeps the faulted quiescence check O(1).
    undone_exempt: usize,
    /// Non-operational node count captured at the top of the current tick
    /// (before that tick's lifecycle transitions); the next slot boundary
    /// charges it as that slot's churn, mirroring the synchronous engine's
    /// per-round accounting under the lockstep mapping.
    pending_crashed: u64,
    /// Opt-in sparse boundary dispatch; `false` dispatches every node at
    /// every slot boundary.
    sparse: bool,
    /// Dense bitset over nodes marked for the next boundary dispatch
    /// (dedup for `wake_list`); sparse mode only.
    wake_bits: Vec<u64>,
    /// Overflow list of the marked nodes (unordered while accumulating).
    wake_list: Vec<u32>,
    /// The next boundary dispatches every node (re-attachment,
    /// `update_nodes`, a non-idle outcome under uniform attachment).
    wake_all: bool,
}

/// Marks node `v` in the sparse boundary-dispatch set (bitset-deduped);
/// free function so fault-session closures can call it with the engine
/// partially borrowed.
fn mark_wake(bits: &mut [u64], list: &mut Vec<u32>, v: usize) {
    let (word, bit) = (v >> 6, 1u64 << (v & 63));
    if bits[word] & bit == 0 {
        bits[word] |= bit;
        list.push(v as u32);
    }
}

impl<'g, P: AsyncProtocol> AsyncEngine<'g, P> {
    /// Creates an engine over `graph` with the paper's single-channel model
    /// and per-node protocol states from `init`.
    pub fn new<F: FnMut(NodeId) -> P>(graph: &'g Graph, config: AsyncConfig, init: F) -> Self {
        AsyncEngine::with_channels(graph, config, ChannelSet::single(), init)
    }

    /// Creates an engine over `graph` and an explicit multiaccess
    /// [`ChannelSet`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate or the channel set's
    /// per-node attachment table does not cover exactly the graph's node
    /// count.
    pub fn with_channels<F: FnMut(NodeId) -> P>(
        graph: &'g Graph,
        config: AsyncConfig,
        channels: ChannelSet,
        mut init: F,
    ) -> Self {
        assert!(config.slot_ticks >= 1, "slot_ticks must be at least 1");
        assert!(
            config.max_delay_ticks >= 1,
            "max_delay_ticks must be at least 1"
        );
        if let Some(len) = channels.table_len() {
            assert_eq!(
                len,
                graph.node_count(),
                "channel attachment table covers {len} nodes, graph has {}",
                graph.node_count()
            );
        }
        let nodes: Vec<P> = graph.nodes().map(&mut init).collect();
        let done_count = nodes.iter().filter(|p| p.is_done()).count();
        let k = channels.channels() as usize;
        AsyncEngine {
            graph,
            nodes,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            in_flight: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            seq: 0,
            slot_writes: std::iter::repeat_with(|| None)
                .take(graph.node_count() * k)
                .collect(),
            writers: Vec::new(),
            lane_slot_writes: vec![None; graph.node_count() * k],
            lane_writers: Vec::new(),
            send_scratch: Vec::new(),
            chan_write_scratch: Vec::new(),
            lane_write_scratch: Vec::new(),
            lane_scratch: vec![LaneOutcome::Idle; k],
            lane_counts: vec![0; k],
            outcome_scratch: (0..k).map(|_| SlotOutcome::Idle).collect(),
            chan_counts: vec![0; k],
            channels,
            tick: 0,
            cost: CostAccount::new(),
            chan_cost: vec![CostAccount::new(); k],
            started: false,
            done_count,
            faults: None,
            undone_exempt: 0,
            pending_crashed: 0,
            sparse: false,
            wake_bits: Vec::new(),
            wake_list: Vec::new(),
            wake_all: false,
        }
    }

    /// Switches the engine to **sparse boundary dispatch**: a slot boundary
    /// dispatches `on_slot_on` callbacks only to nodes that heard a
    /// non-idle outcome on an attached channel, received a message since
    /// the previous boundary, were promoted to `Operational`, or requested
    /// a wakeup via [`AsyncCtx::wake_me`] — instead of to all `n` nodes.
    ///
    /// The asynchronous counterpart of
    /// [`SyncEngine::enable_sparse_stepping`](crate::SyncEngine::enable_sparse_stepping),
    /// with the matching contract: an all-idle boundary callback must be a
    /// pure no-op unless the node re-armed itself with `wake_me`.  For such
    /// protocols sparse dispatch is bit-identical to dense dispatch —
    /// including the RNG stream, because skipped callbacks stage no sends
    /// and therefore draw no delays.  Start callbacks still reach every
    /// operational node.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already started.
    pub fn enable_sparse_boundaries(&mut self) {
        assert!(
            !self.started && self.tick == 0,
            "sparse boundaries must be enabled before the engine starts"
        );
        self.sparse = true;
        self.wake_bits = vec![0; self.graph.node_count().div_ceil(64)];
    }

    /// `true` when sparse boundary dispatch is enabled.
    pub fn sparse_boundaries(&self) -> bool {
        self.sparse
    }

    /// Marks `v` for the next boundary dispatch; no-op under dense dispatch
    /// or when a dispatch-all boundary is already pending.
    fn wake_for_boundary(&mut self, v: usize) {
        if self.sparse && !self.wake_all {
            mark_wake(&mut self.wake_bits, &mut self.wake_list, v);
        }
    }

    /// Installs a deterministic [`FaultPlan`]; must be called before the
    /// engine starts.  Fault rounds advance **once per tick** (under the
    /// lockstep configuration a tick is a round, which is what the
    /// `engine_conformance` fault dimension pins); message drops are keyed
    /// by the sending tick and slot erasures by the slot's sending round
    /// (boundary index − 1).
    ///
    /// # Panics
    ///
    /// Panics if the engine has already started.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            !self.started && self.tick == 0,
            "fault plan must be installed before the engine starts"
        );
        let session = FaultSession::new(plan, self.graph.node_count());
        self.undone_exempt = session
            .lifecycles()
            .iter()
            .zip(&self.nodes)
            .filter(|(l, p)| l.is_exempt() && !p.is_done())
            .count();
        self.faults = Some(session);
    }

    /// The installed fault session, if any.
    pub fn fault_session(&self) -> Option<&FaultSession> {
        self.faults.as_ref()
    }

    /// Current lifecycle state of node `v` (`Operational` when no fault
    /// plan is installed).
    pub fn fault_lifecycle(&self, v: NodeId) -> NodeLifecycle {
        self.faults
            .as_ref()
            .map_or(NodeLifecycle::Operational, |s| s.lifecycle(v))
    }

    /// Applies fault round `round`'s lifecycle transitions; no-op without a
    /// fault plan.
    fn apply_fault_round(&mut self, round: u64) {
        let Some(session) = &mut self.faults else {
            return;
        };
        self.pending_crashed = session.non_operational_count();
        let nodes = &mut self.nodes;
        let done_count = &mut self.done_count;
        let undone_exempt = &mut self.undone_exempt;
        let sparse = self.sparse && !self.wake_all;
        let wake_bits = &mut self.wake_bits;
        let wake_list = &mut self.wake_list;
        session.apply_round(round, |v, _, to| match to {
            NodeLifecycle::Crashed => {
                *undone_exempt += usize::from(!nodes[v.index()].is_done());
            }
            NodeLifecycle::Booting => {
                let node = &mut nodes[v.index()];
                let was = node.is_done();
                *undone_exempt -= usize::from(!was);
                node.on_recover();
                let now = node.is_done();
                *done_count = done_count
                    .checked_add_signed(isize::from(now) - isize::from(was))
                    .expect("done count balances");
            }
            // Lifecycle wakeup: the rejoining node hears the next boundary.
            NodeLifecycle::Operational => {
                if sparse {
                    mark_wake(wake_bits, wake_list, v.index());
                }
            }
            NodeLifecycle::Off => {}
        });
    }

    /// `true` when `v` currently receives callbacks (no plan ⇒ always).
    fn is_node_operational(&self, v: NodeId) -> bool {
        self.faults.as_ref().is_none_or(|s| s.is_operational(v))
    }

    /// The multiaccess channel substrate.
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Applies a dynamic attachment snapshot ([`ChannelSet::reattach`])
    /// between slot boundaries.
    ///
    /// The next boundary's outcome delivery is gated by the **new** masks —
    /// a newly attached node hears the boundary's outcome (including writes
    /// queued under the old attachment, which still resolve), a detached
    /// node observes idle — matching the synchronous engines' between-rounds
    /// semantics ([`SyncEngine::reattach`](crate::SyncEngine::reattach));
    /// the lockstep equivalence is pinned by the `engine_conformance`
    /// re-attachment scenario.
    ///
    /// # Panics
    ///
    /// Panics if `masks` does not cover exactly the graph's node count or a
    /// mask addresses a channel beyond the set's `K`.
    pub fn reattach(&mut self, masks: &[u64]) {
        assert_eq!(
            masks.len(),
            self.graph.node_count(),
            "re-attachment covers {} nodes, graph has {}",
            masks.len(),
            self.graph.node_count()
        );
        self.channels.reattach(masks);
        // Attachment changes what every node hears at the next boundary.
        if self.sparse {
            self.wake_all = true;
        }
    }

    /// Mutably visits every node's protocol state (call between slot
    /// boundaries, e.g. at quiescence between phases of a multi-phase
    /// pipeline), then recounts the done nodes so the O(1) quiescence
    /// tracking stays sound.
    pub fn update_nodes<F: FnMut(NodeId, &mut P)>(&mut self, mut f: F) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            f(NodeId(i), node);
        }
        self.done_count = self.nodes.iter().filter(|p| p.is_done()).count();
        self.undone_exempt = match &self.faults {
            Some(session) => session
                .lifecycles()
                .iter()
                .zip(&self.nodes)
                .filter(|(l, p)| l.is_exempt() && !p.is_done())
                .count(),
            None => 0,
        };
        // Arbitrary state edits invalidate any sparsity assumption.
        if self.sparse {
            self.wake_all = true;
        }
    }

    /// Cost account (rounds = slots elapsed).
    pub fn cost(&self) -> &CostAccount {
        &self.cost
    }

    /// Per-channel breakdown of the channel-scoped counters of
    /// [`cost`](Self::cost); see
    /// [`SyncEngine::channel_costs`](crate::SyncEngine::channel_costs).
    /// Raw (unreconciled) boundary accounting — under the lockstep
    /// configuration apply
    /// [`reconciled_channel_costs`](crate::lockstep::reconciled_channel_costs)
    /// to compare with a synchronous run.
    pub fn channel_costs(&self) -> &[CostAccount] {
        &self.chan_cost
    }

    /// Current time in ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Elapsed time in slot units (the paper's time unit).
    pub fn slots_elapsed(&self) -> u64 {
        self.tick / self.config.slot_ticks
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Immutable access to all node states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Total payload slots ever grown by the in-flight slab (its high-water
    /// mark); exposed so slab-reuse tests can assert boundedness.
    pub fn payload_slab_capacity(&self) -> usize {
        self.slab.slots.len()
    }

    /// Consumes the engine, returning the node states and the cost account.
    pub fn into_parts(self) -> (Vec<P>, CostAccount) {
        (self.nodes, self.cost)
    }

    /// Runs one protocol callback on node `v` with a pooled context, then
    /// folds its outputs (sends, channel write, done transition) back into
    /// the engine.
    fn dispatch<F>(&mut self, v: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut AsyncCtx<'_, P::Msg>),
    {
        let mut sends = std::mem::take(&mut self.send_scratch);
        let mut chan_writes = std::mem::take(&mut self.chan_write_scratch);
        let mut lane_writes = std::mem::take(&mut self.lane_write_scratch);
        let mut graveyard = std::mem::take(&mut self.slab.graveyard);
        let k = self.channels.channels();
        let node = &mut self.nodes[v.index()];
        let was_done = node.is_done();
        let mut woken = false;
        let mut ctx = AsyncCtx {
            node: v,
            tick: self.tick,
            neighbors: self.graph.neighbors(v),
            sends: &mut sends,
            graveyard: &mut graveyard,
            chan_writes: &mut chan_writes,
            lane_writes: &mut lane_writes,
            k,
            attached: self.channels.mask(v),
            woken: &mut woken,
        };
        f(node, &mut ctx);
        self.slab.graveyard = graveyard;
        let now_done = node.is_done();
        self.done_count = self
            .done_count
            .checked_add_signed(isize::from(now_done) - isize::from(was_done))
            .expect("done count balances");
        if woken {
            self.wake_for_boundary(v.index());
        }

        // Message drops apply before a send ever enters the in-flight heap:
        // a dropped copy is charged as sent (plus the drop counter) but
        // never scheduled; a broadcast is interned with the *surviving*
        // reference count only.  The drop coin is keyed by the sending tick
        // and the directed edge — under the lockstep configuration the tick
        // is the round, giving bit-identical drops to the round engines.
        // (The session is moved out for the fold so the schedule calls can
        // borrow `self` mutably; it is moved back right after.)
        let faults = self.faults.take();
        for staged in sends.drain(..) {
            match staged {
                StagedSend::One(to, msg) => {
                    if faults
                        .as_ref()
                        .is_some_and(|s| s.drops_message(self.tick, v, to))
                    {
                        self.cost.add_messages(1);
                        self.cost.add_dropped_messages(1);
                        let k = self.channels.channels() as usize;
                        self.slab.park(msg, k);
                    } else {
                        let slot = self.slab.intern(msg, 1);
                        self.schedule(v, to, slot);
                    }
                }
                StagedSend::All(msg) => {
                    let targets = self.graph.neighbors(v).targets();
                    debug_assert!(!targets.is_empty());
                    let surviving = match &faults {
                        Some(s) => targets
                            .iter()
                            .filter(|&&to| !s.drops_message(self.tick, v, to))
                            .count(),
                        None => targets.len(),
                    };
                    let dropped = (targets.len() - surviving) as u64;
                    if dropped > 0 {
                        self.cost.add_messages(dropped);
                        self.cost.add_dropped_messages(dropped);
                    }
                    if surviving == 0 {
                        let k = self.channels.channels() as usize;
                        self.slab.park(msg, k);
                    } else {
                        let slot = self.slab.intern(msg, surviving as u32);
                        for &to in targets {
                            if faults
                                .as_ref()
                                .is_some_and(|s| s.drops_message(self.tick, v, to))
                            {
                                continue;
                            }
                            self.schedule(v, to, slot);
                        }
                    }
                }
            }
        }
        self.faults = faults;
        self.send_scratch = sends;

        // Fold the staged channel writes into the per-(node, channel) queue;
        // only the last request per channel per slot counts, a replaced
        // payload retires to the graveyard for recycling.
        let k = k as usize;
        for (chan, msg) in chan_writes.drain(..) {
            let queued = &mut self.slot_writes[v.index() * k + chan.index()];
            match queued.replace(msg) {
                Some(old) => self.slab.park(old, k),
                None => self.writers.push((v, chan)),
            }
        }
        self.chan_write_scratch = chan_writes;

        // Lane words OR-merge per (node, channel) instead of replacing.
        for (chan, word) in lane_writes.drain(..) {
            let queued = &mut self.lane_slot_writes[v.index() * k + chan.index()];
            match queued {
                Some(w) => *w |= word,
                None => {
                    *queued = Some(word);
                    self.lane_writers.push((v, chan));
                }
            }
        }
        self.lane_write_scratch = lane_writes;
    }

    /// Queues one delivery of the payload in `slot` from `from` to `to`
    /// after a freshly drawn adversarial delay.
    fn schedule(&mut self, from: NodeId, to: NodeId, slot: usize) {
        let delay = self.rng.gen_range(1..=self.config.max_delay_ticks);
        let when = self.tick + delay;
        self.seq += 1;
        self.in_flight
            .push(Reverse((when, self.seq, to.index(), from.index(), slot)));
        self.cost.add_messages(1);
    }

    /// Returns `true` when every node is done, nothing is in flight, and no
    /// channel write is pending.  O(1).  Under an installed fault plan,
    /// nodes whose lifecycle is `Off` or `Crashed` count as settled — they
    /// can never take another callback.
    pub fn is_quiescent(&self) -> bool {
        self.done_count + self.undone_exempt == self.nodes.len()
            && self.in_flight.is_empty()
            && self.writers.is_empty()
            && self.lane_writers.is_empty()
    }

    fn deliver_due(&mut self) {
        while let Some(&Reverse((when, _, _, _, _))) = self.in_flight.peek() {
            if when > self.tick {
                break;
            }
            let Reverse((_, _, to, from, slot)) = self.in_flight.pop().expect("peeked");
            // Check the payload out of the slab for the duration of the
            // callback (the callback may intern new payloads into the same
            // slab), then check it back in: it stays in its slot while other
            // deliveries of the same broadcast are outstanding and retires
            // to the free list + graveyard after the last one.
            let msg = self.slab.check_out(slot);
            // A message arriving at a non-operational node is silently lost
            // (not a counted drop — it *was* delivered, there is just nobody
            // there to read it); the slab reference is still released.
            if self.is_node_operational(NodeId(to)) {
                self.dispatch(NodeId(to), |node, ctx| {
                    node.on_message(NodeId(from), &msg, ctx)
                });
                // A delivery is boundary work: the receiver may have state
                // to surface at the next `on_slot_on` round (the lockstep
                // adapter steps on buffered inboxes, for one).
                self.wake_for_boundary(to);
            }
            self.slab.check_in(slot, msg);
        }
    }

    fn resolve_slot_boundary(&mut self) {
        // Resolve every channel's slot from the queued writes.  The winner
        // of a `Success` slot is **moved** into the outcome (the flat-engine
        // counterpart delivers a handle); colliding payloads retire straight
        // to the graveyard.  Everything here is pooled.
        let k = self.channels.channels() as usize;
        let mut outcomes = std::mem::take(&mut self.outcome_scratch);
        debug_assert!(outcomes.iter().all(SlotOutcome::is_idle));
        self.chan_counts.fill(0);
        for i in 0..self.writers.len() {
            let (v, chan) = self.writers[i];
            let c = chan.index();
            let msg = self.slot_writes[v.index() * k + c]
                .take()
                .expect("queued write");
            self.chan_counts[c] += 1;
            match std::mem::replace(&mut outcomes[c], SlotOutcome::Collision) {
                SlotOutcome::Idle => outcomes[c] = SlotOutcome::Success { from: v, msg },
                SlotOutcome::Success { msg: prev, .. } => {
                    self.slab.park(prev, k);
                    self.slab.park(msg, k);
                }
                SlotOutcome::Collision => self.slab.park(msg, k),
                // Erasure is applied only after this fold completes.
                SlotOutcome::Erased => unreachable!("erasure happens post-fold"),
            }
        }
        self.writers.clear();
        // Lane sub-slots fold the same way, except words OR together instead
        // of colliding.
        let mut lane_outcomes = std::mem::take(&mut self.lane_scratch);
        debug_assert!(lane_outcomes.iter().all(LaneOutcome::is_idle));
        self.lane_counts.fill(0);
        for i in 0..self.lane_writers.len() {
            let (v, chan) = self.lane_writers[i];
            let c = chan.index();
            let word = self.lane_slot_writes[v.index() * k + c]
                .take()
                .expect("queued lane write");
            self.lane_counts[c] += 1;
            lane_outcomes[c] = match lane_outcomes[c] {
                LaneOutcome::Idle => LaneOutcome::Word(word),
                LaneOutcome::Word(w) => LaneOutcome::Word(w | word),
                LaneOutcome::Erased => unreachable!("erasure happens post-fold"),
            };
        }
        self.lane_writers.clear();
        self.cost.add_round();
        // Churn accounting: this boundary accounts the slot whose writes
        // were staged up to the previous tick, so it is charged the
        // non-operational count captured before this tick's transitions.
        if self.pending_crashed > 0 {
            self.cost.add_crashed_rounds(self.pending_crashed);
        }
        // Erasure at the resolve boundary, busy slots only.  The slot being
        // resolved carries the writes of the *previous* round under the
        // lockstep mapping, so the erasure coin is keyed by boundary
        // index − 1 — bit-identical to the round engines' `(round, channel)`
        // draw when `slot_ticks == 1`.
        let erase_round = (self.tick / self.config.slot_ticks).saturating_sub(1);
        for (c, &count) in self.chan_counts.iter().enumerate() {
            self.chan_cost[c].add_round();
            if count > 0
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|s| s.erases_slot(erase_round, ChannelId(c as u16)))
            {
                // The winner's payload (if any) is discarded at the resolve
                // boundary and recycled like any retired message.
                if let SlotOutcome::Success { msg, .. } =
                    std::mem::replace(&mut outcomes[c], SlotOutcome::Erased)
                {
                    self.slab.park(msg, k);
                }
                self.cost.add_erased_slot(u64::from(count));
                self.chan_cost[c].add_erased_slot(u64::from(count));
            } else {
                self.cost.add_channel_slot(u64::from(count));
                self.chan_cost[c].add_channel_slot(u64::from(count));
            }
        }
        // Lane erasure shares the channel's erasure draw (the round's
        // transmission on that channel is lost as a whole); corruption flips
        // one seeded bit of a busy, non-erased word.
        for (c, &count) in self.lane_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let chan = ChannelId(c as u16);
            if self
                .faults
                .as_ref()
                .is_some_and(|s| s.erases_slot(erase_round, chan))
            {
                lane_outcomes[c] = LaneOutcome::Erased;
                self.cost.add_erased_lanes(u64::from(count));
                self.chan_cost[c].add_erased_lanes(u64::from(count));
            } else {
                if let Some(bit) = self
                    .faults
                    .as_ref()
                    .and_then(|s| s.corrupts_lane(erase_round, chan))
                {
                    if let LaneOutcome::Word(w) = &mut lane_outcomes[c] {
                        *w ^= 1u64 << bit;
                    }
                    self.cost.add_corrupted_payloads(1);
                    self.chan_cost[c].add_corrupted_payloads(1);
                }
                self.cost.add_lane_slot(u64::from(count));
                self.chan_cost[c].add_lane_slot(u64::from(count));
            }
        }

        // A non-idle outcome is feedback every *attached* node hears, so
        // under sparse dispatch those nodes join the boundary's wake set
        // (uniform attachment short-circuits to a dispatch-all boundary).
        if self.sparse {
            let mut nonidle_mask = 0u64;
            for (c, outcome) in outcomes.iter().enumerate() {
                if !outcome.is_idle() || !lane_outcomes[c].is_idle() {
                    nonidle_mask |= 1 << c;
                }
            }
            if nonidle_mask != 0 {
                match self.channels.masks_table() {
                    None => self.wake_all = true,
                    Some(masks) => {
                        if !self.wake_all {
                            for (v, &mask) in masks.iter().enumerate() {
                                if mask & nonidle_mask != 0 {
                                    mark_wake(&mut self.wake_bits, &mut self.wake_list, v);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Dispatch the boundary.  Dense (or a dispatch-all wake): every node
        // hears every channel it is attached to, in ascending channel order
        // (unattached channels observe `Idle`) — one dispatch per node, so
        // the per-callback bookkeeping (buffer swaps, done tracking, send
        // draining) is not multiplied by K.  Non-operational nodes hear
        // nothing.  Sparse: only the marked nodes, in ascending node index —
        // identical to dense for boundary-safe protocols, because a skipped
        // callback would have observed only idle outcomes and staged
        // nothing (in particular, no RNG draws are skipped).
        let idle = SlotOutcome::Idle;
        let lane_idle = LaneOutcome::Idle;
        if self.sparse && !self.wake_all {
            // Wakes raised *during* these callbacks are self-wakes of the
            // node being dispatched (its bit is already cleared below), so
            // they accumulate cleanly for the next boundary.
            let wake_list = std::mem::take(&mut self.wake_list);
            let mut list = wake_list;
            list.sort_unstable();
            for &vi in &list {
                let v = vi as usize;
                self.wake_bits[v >> 6] &= !(1u64 << (v & 63));
                let v = NodeId(v);
                if !self.is_node_operational(v) {
                    continue;
                }
                let attached = self.channels.mask(v);
                self.dispatch(v, |node, ctx| {
                    for (c, lanes) in lane_outcomes.iter().enumerate() {
                        let heard = if attached & (1 << c) != 0 {
                            lanes
                        } else {
                            &lane_idle
                        };
                        node.on_lanes_on(ChannelId(c as u16), heard, ctx);
                    }
                    for (c, outcome) in outcomes.iter().enumerate() {
                        let heard = if attached & (1 << c) != 0 {
                            outcome
                        } else {
                            &idle
                        };
                        node.on_slot_on(ChannelId(c as u16), heard, ctx);
                    }
                });
            }
            // Hand the (drained) buffer back without clobbering wakes the
            // callbacks just accumulated into `self.wake_list`.
            list.clear();
            list.append(&mut self.wake_list);
            self.wake_list = list;
        } else {
            if self.sparse {
                // Dispatch-all boundary consumes the accumulated wake state.
                self.wake_all = false;
                self.wake_bits.fill(0);
                self.wake_list.clear();
            }
            for v in self.graph.nodes() {
                if !self.is_node_operational(v) {
                    continue;
                }
                let attached = self.channels.mask(v);
                self.dispatch(v, |node, ctx| {
                    for (c, lanes) in lane_outcomes.iter().enumerate() {
                        let heard = if attached & (1 << c) != 0 {
                            lanes
                        } else {
                            &lane_idle
                        };
                        node.on_lanes_on(ChannelId(c as u16), heard, ctx);
                    }
                    for (c, outcome) in outcomes.iter().enumerate() {
                        let heard = if attached & (1 << c) != 0 {
                            outcome
                        } else {
                            &idle
                        };
                        node.on_slot_on(ChannelId(c as u16), heard, ctx);
                    }
                });
            }
        }

        // Retire the boundary's winning payloads for recycling.
        for outcome in &mut outcomes {
            if let SlotOutcome::Success { msg, .. } = std::mem::replace(outcome, SlotOutcome::Idle)
            {
                self.slab.park(msg, k);
            }
        }
        self.outcome_scratch = outcomes;
        lane_outcomes.fill(LaneOutcome::Idle);
        self.lane_scratch = lane_outcomes;
    }

    /// Runs until quiescence or until `max_ticks` ticks have elapsed.
    /// Returns `true` when the run completed.
    ///
    /// With a fault plan installed, fault round `t` is applied at the top of
    /// tick `t` (round 0 before the start callbacks): crashes take effect
    /// before any of the tick's deliveries or boundary callbacks, exactly as
    /// the round engines apply them before the round's steps.
    pub fn run(&mut self, max_ticks: u64) -> bool {
        if !self.started {
            self.started = true;
            self.apply_fault_round(0);
            for v in self.graph.nodes() {
                if self.is_node_operational(v) {
                    self.dispatch(v, |node, ctx| node.on_start(ctx));
                }
            }
        }
        while self.tick < max_ticks {
            if self.is_quiescent() {
                return true;
            }
            self.tick += 1;
            self.apply_fault_round(self.tick);
            self.deliver_due();
            if self.tick.is_multiple_of(self.config.slot_ticks) {
                self.resolve_slot_boundary();
            }
        }
        self.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::generators;

    /// Node 0 sends a token to all neighbours; every receiver acknowledges on
    /// the channel (colliding is fine, we only check delivery).
    struct PingAll {
        id: NodeId,
        got: bool,
        started: bool,
    }

    impl AsyncProtocol for PingAll {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u32>) {
            if self.id == NodeId(0) {
                ctx.send_all(7);
                self.started = true;
                self.got = true;
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: &u32, _ctx: &mut AsyncCtx<'_, u32>) {
            assert_eq!(*msg, 7);
            self.got = true;
        }
        fn on_slot(&mut self, _o: &SlotOutcome<u32>, _ctx: &mut AsyncCtx<'_, u32>) {}
        fn is_done(&self) -> bool {
            self.got
        }
    }

    #[test]
    fn messages_arrive_despite_delays() {
        let g = generators::star(6);
        let cfg = AsyncConfig {
            slot_ticks: 3,
            max_delay_ticks: 3,
            seed: 42,
        };
        let mut eng = AsyncEngine::new(&g, cfg, |id| PingAll {
            id,
            got: false,
            started: false,
        });
        assert!(eng.run(1000));
        for v in g.nodes() {
            assert!(eng.node(v).got, "node {v} did not receive the token");
        }
        assert_eq!(eng.cost().p2p_messages, 5);
        assert!(eng.tick() <= 3, "delays are bounded by max_delay_ticks");
        // The broadcast was interned once, not five times.
        assert_eq!(eng.payload_slab_capacity(), 1);
    }

    /// All nodes write once; the slot must resolve as a collision for n >= 2.
    struct WriteOnce {
        wrote: bool,
        saw: Option<bool>,
    }
    impl AsyncProtocol for WriteOnce {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u8>) {
            ctx.write_channel(1);
            self.wrote = true;
        }
        fn on_message(&mut self, _f: NodeId, _m: &u8, _c: &mut AsyncCtx<'_, u8>) {}
        fn on_slot(&mut self, o: &SlotOutcome<u8>, _c: &mut AsyncCtx<'_, u8>) {
            if self.saw.is_none() {
                self.saw = Some(o.is_collision());
            }
        }
        fn is_done(&self) -> bool {
            self.saw.is_some()
        }
    }

    /// Every node contributes one bit of a lane word at start; all must hear
    /// the OR of the fleet's bits at the next boundary.
    struct LaneOnce {
        id: NodeId,
        heard: Option<LaneOutcome>,
    }
    impl AsyncProtocol for LaneOnce {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u8>) {
            ctx.write_lanes_on(ChannelId::DEFAULT, 1u64 << self.id.index());
        }
        fn on_message(&mut self, _f: NodeId, _m: &u8, _c: &mut AsyncCtx<'_, u8>) {}
        fn on_lanes_on(&mut self, chan: ChannelId, lanes: &LaneOutcome, _c: &mut AsyncCtx<'_, u8>) {
            if chan == ChannelId::DEFAULT && self.heard.is_none() && !lanes.is_idle() {
                self.heard = Some(*lanes);
            }
        }
        fn is_done(&self) -> bool {
            self.heard.is_some()
        }
    }

    #[test]
    fn lane_boundaries_or_merge_words() {
        let g = generators::ring(5);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| LaneOnce {
            id,
            heard: None,
        });
        assert!(eng.run(100));
        for v in g.nodes() {
            assert_eq!(eng.node(v).heard, Some(LaneOutcome::Word(0b11111)));
        }
        assert_eq!(eng.cost().lane_writes, 5);
        assert_eq!(eng.cost().lanes_busy, 1);
        assert_eq!(eng.cost().slots_collision, 0);
        assert!(eng.is_quiescent());
    }

    #[test]
    fn slot_boundaries_resolve_collisions() {
        let g = generators::ring(5);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |_| WriteOnce {
            wrote: false,
            saw: None,
        });
        assert!(eng.run(100));
        for v in g.nodes() {
            assert_eq!(eng.node(v).saw, Some(true));
        }
        assert_eq!(eng.cost().slots_collision, 1);
        assert!(eng.slots_elapsed() >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::random_connected(20, 0.2, 3);
        let cfg = AsyncConfig {
            slot_ticks: 4,
            max_delay_ticks: 4,
            seed: 11,
        };
        let run = |cfg: AsyncConfig| {
            let mut eng = AsyncEngine::new(&g, cfg, |id| PingAll {
                id,
                got: false,
                started: false,
            });
            eng.run(10_000);
            (eng.tick(), eng.cost().p2p_messages)
        };
        assert_eq!(run(cfg), run(cfg));
    }

    /// A write in every slot and steady message churn: exercises the payload
    /// slab free list and the writers list over many slots.
    struct Chatter {
        id: NodeId,
        slots_seen: u32,
        target: u32,
    }
    impl AsyncProtocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, u64>) {
            ctx.send_all(0);
            if self.id == NodeId(0) {
                ctx.write_channel(0);
            }
        }
        fn on_message(&mut self, _f: NodeId, hops: &u64, ctx: &mut AsyncCtx<'_, u64>) {
            if *hops < 50 {
                ctx.send(ctx.neighbors().target(0), *hops + 1);
            }
        }
        fn on_slot(&mut self, _o: &SlotOutcome<u64>, ctx: &mut AsyncCtx<'_, u64>) {
            self.slots_seen += 1;
            if self.id == NodeId(0) && self.slots_seen < self.target {
                ctx.write_channel(u64::from(self.slots_seen));
            }
        }
        fn is_done(&self) -> bool {
            self.slots_seen >= self.target
        }
    }

    #[test]
    fn slab_and_writers_recycle_across_slots() {
        let g = generators::ring(6);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| Chatter {
            id,
            slots_seen: 0,
            target: 20,
        });
        assert!(eng.run(1_000_000));
        assert!(eng.cost().slots_success >= 19);
        assert!(eng.is_quiescent());
        // Every payload slot must have been recycled back to the free list.
        assert_eq!(eng.slab.free.len(), eng.slab.slots.len());
        assert!(eng.slab.slots.iter().all(Option::is_none));
        assert!(eng.slab.refs.iter().all(|&r| r == 0));
    }

    /// Broadcast payloads are shared: every receiver must observe the same
    /// value, the slab must hold one slot per *broadcast* (not per
    /// delivery), and the slot must be freed only after the last delivery.
    struct ShareCheck {
        id: NodeId,
        rounds: u64,
        heard: u64,
    }
    impl AsyncProtocol for ShareCheck {
        type Msg = Vec<u64>;
        fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Vec<u64>>) {
            if self.id == NodeId(0) {
                ctx.send_all(vec![0, 42]);
                self.rounds = 1;
            }
        }
        fn on_message(&mut self, _f: NodeId, msg: &Vec<u64>, _c: &mut AsyncCtx<'_, Vec<u64>>) {
            assert_eq!(msg[1], 42, "shared broadcast payload corrupted");
            self.heard += 1;
        }
        fn on_slot(&mut self, _o: &SlotOutcome<Vec<u64>>, ctx: &mut AsyncCtx<'_, Vec<u64>>) {
            if self.id == NodeId(0) && self.rounds < 9 {
                let mut frame = ctx.recycle_payload().unwrap_or_default();
                frame.clear();
                frame.extend_from_slice(&[self.rounds, 42]);
                ctx.send_all(frame);
                self.rounds += 1;
            }
        }
        fn is_done(&self) -> bool {
            self.id != NodeId(0) || self.rounds >= 9
        }
    }

    #[test]
    fn broadcast_interns_once_and_recycles() {
        let g = generators::complete(8);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| ShareCheck {
            id,
            rounds: 0,
            heard: 0,
        });
        assert!(eng.run(100_000));
        // 9 broadcasts of degree 7 = 63 deliveries, but the slab holds one
        // slot per *broadcast*, and delays (≤ 1 slot) keep at most a couple
        // of broadcasts in flight at once — far fewer slots than deliveries.
        assert_eq!(eng.cost().p2p_messages, 9 * 7);
        assert!(
            eng.payload_slab_capacity() <= 4,
            "slab grew one slot per delivery: {}",
            eng.payload_slab_capacity()
        );
        let heard: u64 = g.nodes().map(|v| eng.node(v).heard).sum();
        assert_eq!(heard, 9 * 7);
    }

    #[test]
    fn initially_off_node_is_silent_and_exempt() {
        let g = generators::star(4);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| PingAll {
            id,
            got: false,
            started: false,
        });
        eng.set_fault_plan(FaultPlan::none().with_initial_off(vec![NodeId(2)]));
        assert!(eng.run(1000), "off node must be exempt from quiescence");
        assert!(!eng.node(NodeId(2)).got, "off node took a callback");
        assert_eq!(eng.fault_lifecycle(NodeId(2)), NodeLifecycle::Off);
        for v in [NodeId(0), NodeId(1), NodeId(3)] {
            assert!(eng.node(v).got);
        }
        // The hub still sent to all 3 leaves; the copy to the off node was
        // delivered into the void, not dropped.
        assert_eq!(eng.cost().p2p_messages, 3);
        assert_eq!(eng.cost().dropped_messages, 0);
    }

    #[test]
    fn certain_drops_never_deliver() {
        let g = generators::star(4);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |id| PingAll {
            id,
            got: false,
            started: false,
        });
        eng.set_fault_plan(FaultPlan::from_rates(3, 0.0, 1.0, 0.0, 0.0));
        assert!(!eng.run(50), "leaves can never hear the token");
        for v in [NodeId(1), NodeId(2), NodeId(3)] {
            assert!(!eng.node(v).got);
        }
        assert_eq!(eng.cost().p2p_messages, 3);
        assert_eq!(eng.cost().dropped_messages, 3);
        assert!(!eng.is_quiescent());
        // Nothing lingers in the slab: dropped broadcasts are parked whole.
        assert_eq!(eng.slab.refs.iter().sum::<u32>(), 0);
    }

    #[test]
    fn erased_boundary_reaches_listeners() {
        let g = generators::ring(5);
        let mut eng = AsyncEngine::new(&g, AsyncConfig::default(), |_| WriteOnce {
            wrote: false,
            saw: None,
        });
        eng.set_fault_plan(FaultPlan::from_rates(8, 1.0, 0.0, 0.0, 0.0));
        assert!(eng.run(100));
        // Five simultaneous writers would collide, but the slot is erased:
        // `saw` records `is_collision()`, which is false for `Erased`.
        for v in g.nodes() {
            assert_eq!(eng.node(v).saw, Some(false));
        }
        assert_eq!(eng.cost().slots_collision, 0);
        assert_eq!(eng.cost().erased_slots, 1);
        assert_eq!(eng.cost().channel_writes, 5);
    }

    #[test]
    #[should_panic]
    fn zero_slot_ticks_rejected() {
        let g = generators::path(2);
        let cfg = AsyncConfig {
            slot_ticks: 0,
            max_delay_ticks: 1,
            seed: 0,
        };
        let _ = AsyncEngine::new(&g, cfg, |id| PingAll {
            id,
            got: false,
            started: false,
        });
    }
}
