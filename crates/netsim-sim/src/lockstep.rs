//! Round-for-round replay of a synchronous [`Protocol`] on the
//! [`AsyncEngine`](crate::AsyncEngine).
//!
//! With `slot_ticks = 1` and `max_delay_ticks = 1` every message sent while
//! round `r` executes arrives before the slot boundary that starts round
//! `r + 1`, so the event-driven run is round-for-round equivalent to the
//! synchronous engines — the third substrate of the `engine_conformance`
//! suite, and the adapter the channel-sharded MST uses to pin its phase
//! round counts on the asynchronous engine.
//!
//! One structural accounting difference is inherent to the replay: the
//! `on_start` round observes the axiomatic all-idle slots *preceding* time
//! 0 without the engine counting them, while a synchronous run's final round
//! resolves all-idle slots no step ever observes.  Both runs execute the
//! same number of steps, so a lockstep [`CostAccount`](crate::CostAccount)
//! matches the synchronous one after adding exactly one all-idle round
//! ([`lockstep_config`] documents the configuration; the conformance harness
//! applies the adjustment).
//!
//! The real-socket backend (`netsim-io`) solves the same round-framing
//! problem across *processes* instead of inside one event queue: each host
//! closes its round with a counted `Barrier` frame (see
//! [`wire::Frame`](crate::wire::Frame)), so round boundaries and quiescence
//! are detected from frame counts rather than tick scheduling — the
//! wire-format sibling of this adapter's slot-boundary discipline, and the
//! fourth substrate of the conformance matrix.

use crate::async_engine::{AsyncConfig, AsyncCtx, AsyncProtocol};
use crate::channel::{ChannelId, LaneOutcome, SlotOutcome};
use crate::node::{Inbox, OutboxBuffer, Protocol, RoundIo};
use netsim_graph::NodeId;

/// The [`AsyncConfig`] under which [`Lockstep`] replays the synchronous
/// round structure: one tick per slot, every delay one tick, seed 0 (the
/// delay draw is degenerate, so the seed is irrelevant).
pub fn lockstep_config() -> AsyncConfig {
    AsyncConfig {
        slot_ticks: 1,
        max_delay_ticks: 1,
        seed: 0,
    }
}

/// Reconciles a lockstep run's [`CostAccount`](crate::CostAccount) with the
/// synchronous engines' accounting by adding the one axiomatic all-idle
/// round (plus its `k` idle slots) the `on_start` round observed without
/// the engine counting it — see the module docs.  After this adjustment the
/// account must be bit-identical to the synchronous run's.
pub fn reconciled_cost(mut cost: crate::CostAccount, k: u16) -> crate::CostAccount {
    cost.add_round();
    for _ in 0..k {
        cost.add_channel_slot(0);
    }
    cost
}

/// Per-channel counterpart of [`reconciled_cost`]: adds the one axiomatic
/// all-idle round (and its idle slot) to every channel's account.  After
/// this adjustment the per-channel accounts of a lockstep run
/// ([`AsyncEngine::channel_costs`](crate::AsyncEngine::channel_costs)) are
/// bit-identical to the synchronous engines' — the channel-scoped counters
/// carry no churn, so no faulted variant is needed.
pub fn reconciled_channel_costs(costs: &[crate::CostAccount]) -> Vec<crate::CostAccount> {
    costs
        .iter()
        .map(|&c| {
            let mut c = c;
            c.add_round();
            c.add_channel_slot(0);
            c
        })
        .collect()
}

/// [`reconciled_cost`] for runs with an installed
/// [`FaultPlan`](crate::FaultPlan): the synchronous run's final all-idle
/// round also charges that round's churn, which the lockstep run's last
/// boundary never accounts.  `crashed_final` is the engine's final
/// non-operational count
/// ([`FaultSession::non_operational_count`](crate::FaultSession::non_operational_count)
/// after the run) — both engines apply the same fault rounds, so the final
/// lifecycle census is shared, and no faults can fire in the all-idle round
/// itself (no writers to erase, no sends to drop, by the definition of
/// quiescence).
pub fn reconciled_cost_faulted(
    cost: crate::CostAccount,
    k: u16,
    crashed_final: u64,
) -> crate::CostAccount {
    let mut cost = reconciled_cost(cost, k);
    cost.add_crashed_rounds(crashed_final);
    cost
}

/// Adapter that replays a synchronous [`Protocol`] on the
/// [`AsyncEngine`](crate::AsyncEngine) in lockstep (see the module docs).
/// The engine delivers every channel's outcome per boundary (ascending
/// channel order, per node); the adapter buffers them and steps the inner
/// protocol after the last one.
#[derive(Debug)]
pub struct Lockstep<P: Protocol> {
    inner: P,
    /// Deliveries buffered for the current round, in arrival order; sorted
    /// by sender index (stably — preserving per-sender send order) before
    /// each step to reproduce the synchronous inbox contract.
    inbox: Vec<(NodeId, P::Msg)>,
    /// Per-channel outcomes of the boundary being delivered.
    slots: Vec<SlotOutcome<P::Msg>>,
    /// Per-channel lane words of the boundary being delivered (the engine
    /// fires `on_lanes_on` for every channel before any `on_slot_on`, so
    /// these are complete by the time the last slot callback steps us).
    lanes: Vec<LaneOutcome>,
    outbox: OutboxBuffer<P::Msg>,
}

impl<P: Protocol> Lockstep<P> {
    /// Wraps a protocol instance for a `k`-channel engine.
    pub fn new(inner: P, k: u16) -> Self {
        Lockstep {
            inner,
            inbox: Vec::new(),
            slots: (0..k).map(|_| SlotOutcome::Idle).collect(),
            lanes: vec![LaneOutcome::Idle; usize::from(k)],
            outbox: OutboxBuffer::new(),
        }
    }

    /// The wrapped protocol state.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol state, for between-phase
    /// reseeding through
    /// [`AsyncEngine::update_nodes`](crate::AsyncEngine::update_nodes).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Consumes the adapter, returning the wrapped protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn step_sync(&mut self, ctx: &mut AsyncCtx<'_, P::Msg>) {
        self.inbox.sort_by_key(|&(from, _)| from.index());
        // Replay the node's real attachment so is_attached / the
        // write_channel_on gate behave exactly as on the synchronous
        // engines, sharded channel sets included.
        let attached = (0..ctx.channels())
            .filter(|&c| ctx.is_attached(ChannelId(c)))
            .fold(0u64, |mask, c| mask | 1 << c);
        // The round index is the engine's tick, not a local counter: under
        // the lockstep configuration boundary `t` steps round `t`, and a
        // node that missed steps while crashed must resume at the *current*
        // round, not where its own count left off.
        let mut io = RoundIo::detached_multi(
            ctx.id(),
            ctx.tick(),
            ctx.neighbors(),
            Inbox::direct(&self.inbox),
            &self.slots,
            &mut self.outbox,
        )
        .with_attachment(attached)
        .with_lanes(&self.lanes);
        self.inner.step(&mut io);
        self.inbox.clear();
        // Forward the inner protocol's wakeup requests onto the engine's
        // boundary-wake substrate, so a `wake_me`-adopting protocol keeps
        // its self-arming semantics under sparse boundary dispatch.
        let mut woken = false;
        self.outbox.take_wakes(|_| woken = true);
        if woken {
            ctx.wake_me();
        }
        // Channel writes move out before the sends: draining the sends
        // retires the payload epoch the write handles point into.
        self.outbox
            .take_channel_writes(|chan, _, msg| ctx.write_channel_on(chan, msg));
        self.outbox
            .take_lane_writes(|chan, _, word| ctx.write_lanes_on(chan, word));
        for (to, msg) in self.outbox.drain_sends() {
            ctx.send(to, msg);
        }
    }
}

impl<P: Protocol> AsyncProtocol for Lockstep<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut AsyncCtx<'_, Self::Msg>) {
        // Round 0 observes the axiomatic all-idle slots preceding time 0.
        for slot in &mut self.slots {
            *slot = SlotOutcome::Idle;
        }
        self.lanes.fill(LaneOutcome::Idle);
        self.step_sync(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, _ctx: &mut AsyncCtx<'_, Self::Msg>) {
        self.inbox.push((from, msg.clone()));
    }

    fn on_lanes_on(
        &mut self,
        chan: ChannelId,
        lanes: &LaneOutcome,
        _ctx: &mut AsyncCtx<'_, Self::Msg>,
    ) {
        self.lanes[chan.index()] = *lanes;
    }

    fn on_slot_on(
        &mut self,
        chan: ChannelId,
        outcome: &SlotOutcome<Self::Msg>,
        ctx: &mut AsyncCtx<'_, Self::Msg>,
    ) {
        self.slots[chan.index()] = outcome.clone();
        if chan.index() + 1 == self.slots.len() {
            self.step_sync(ctx);
        }
    }

    fn is_done(&self) -> bool {
        self.inner.is_done() && self.inbox.is_empty()
    }

    fn on_recover(&mut self) {
        // Forward the lifecycle hook to the wrapped synchronous protocol.
        // The adapter's own buffers need no reset: the inbox is always empty
        // outside a tick (deliveries to a crashed node are gated by the
        // engine), and every slot buffer entry is overwritten at the next
        // boundary before the inner protocol steps again.
        self.inner.on_recover();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsyncEngine, ChannelSet, SyncEngine};
    use netsim_graph::generators;

    /// Each node broadcasts its id once and folds what it hears.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct OneShot {
        id: u64,
        heard: u64,
        sent: bool,
    }
    impl Protocol for OneShot {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            for (_, &m) in io.inbox() {
                self.heard = self.heard.wrapping_mul(31).wrapping_add(m);
            }
            if !self.sent {
                io.send_all(self.id);
                if self.id.is_multiple_of(3) {
                    io.write_channel(self.id);
                }
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn lockstep_matches_sync_engine() {
        let g = generators::ring(9);
        let init = |v: NodeId| OneShot {
            id: v.index() as u64,
            heard: 0,
            sent: false,
        };
        let mut sync = SyncEngine::with_channels(&g, ChannelSet::single(), init);
        assert!(sync.run(100).is_completed());
        let mut lock =
            AsyncEngine::with_channels(&g, lockstep_config(), ChannelSet::single(), |v| {
                Lockstep::new(init(v), 1)
            });
        assert!(lock.run(100));
        for v in g.nodes() {
            assert_eq!(sync.node(v), lock.node(v).inner());
        }
    }
}
