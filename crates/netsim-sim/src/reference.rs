//! Straightforward reference implementation of the synchronous round engine.
//!
//! [`ReferenceEngine`] is the pre-optimisation engine kept verbatim in
//! spirit: per round it allocates a fresh outbox per stepping node and a
//! fresh channel-writes buffer, and its quiescence check re-scans every node
//! and every pending queue.  (One concession to practicality: the per-node
//! pending queues are double-buffered and reused across rounds instead of
//! being reallocated with `vec![Vec::new(); n]` every round — the engine
//! bench and the at-scale equivalence tests drive this engine at 10k–100k
//! nodes, where that one allocation pattern dominated wall-clock without
//! being the behaviour under comparison.)  It exists for two reasons:
//!
//! * **equivalence testing** — the property tests and the
//!   `engine_conformance` suite assert that the zero-allocation, arena-backed
//!   [`SyncEngine`](crate::SyncEngine) produces identical per-node final
//!   states, delivery traces, [`RunOutcome`], and [`CostAccount`] on random
//!   protocols and topologies.  This engine deliberately stays on the seed's
//!   **clone path**: every staged payload is cloned out of the outbox
//!   ([`OutboxBuffer::drain_sends`]) into per-node pending queues, one owned
//!   message per delivery — the semantics the arena path must reproduce
//!   bit-for-bit;
//! * **benchmarking** — the engine benchmark (`experiments --engine`)
//!   measures the flat engine's speedup against this baseline and records it
//!   in `BENCH_engine.json`.
//!
//! Do not use it for experiments; it is deliberately allocator-bound.

use crate::channel::{
    resolve_lanes, resolve_slots, ChannelId, ChannelSet, LaneOutcome, SlotOutcome, SlotState,
};
use crate::engine::RunOutcome;
use crate::fault::{FaultPlan, FaultSession, NodeLifecycle};
use crate::metrics::CostAccount;
use crate::node::{Inbox, OutboxBuffer, Protocol, RoundIo, Slots};
use netsim_graph::{Graph, NodeId};

/// Allocation-per-round reference executor; see the module docs.
#[derive(Debug)]
pub struct ReferenceEngine<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// The multiaccess channel substrate: `K` channels + per-node attachment.
    channels: ChannelSet,
    /// Messages to deliver at the start of the next round: `pending[v] = (from, msg)*`.
    pending: Vec<Vec<(NodeId, P::Msg)>>,
    /// Pooled next-round queues, swapped with `pending` after every round
    /// (cleared but capacity-retaining).
    next_pending: Vec<Vec<(NodeId, P::Msg)>>,
    /// Per-channel outcome of the last resolved round, winners **cloned**
    /// into place by [`resolve_slots`] — the seed's clone-path semantics.
    prev_slots: Vec<SlotOutcome<P::Msg>>,
    /// Per-channel lane sub-slot outcome of the last resolved round
    /// ([`resolve_lanes`]); length `K`.
    prev_lanes: Vec<LaneOutcome>,
    cost: CostAccount,
    /// Per-channel breakdown of the channel-scoped counters in `cost`;
    /// length `K`.  Mirrors
    /// [`SyncEngine::channel_costs`](crate::SyncEngine::channel_costs)
    /// bit-for-bit.
    chan_cost: Vec<CostAccount>,
    round: u64,
    /// Injected-fault session, when [`ReferenceEngine::set_fault_plan`]
    /// installed one.
    faults: Option<FaultSession>,
    /// Opt-in sparse stepping: recompute the active set from full state
    /// every round (brute force, O(n)) and step only its members.  This is
    /// the executable specification of the flat engine's frontier.
    sparse: bool,
    /// Nodes woken for the current round (`wake_me` last round, or a boot
    /// promotion this round); sparse mode only.
    woken: Vec<bool>,
    /// `wake_me` requests raised during the current round; swapped into
    /// `woken` at the next round's start.
    next_woken: Vec<bool>,
    /// The next round must step every node (round 0, re-attachment,
    /// `update_nodes`); sparse mode only.
    step_all: bool,
    /// Node indices stepped in the last executed round, ascending; sparse
    /// mode only.
    last_stepped: Vec<u32>,
}

impl<'g, P: Protocol> ReferenceEngine<'g, P> {
    /// Creates an engine over `graph` with the paper's single-channel model,
    /// instantiating each node's protocol with `init(node_id)`.
    pub fn new<F: FnMut(NodeId) -> P>(graph: &'g Graph, init: F) -> Self {
        ReferenceEngine::with_channels(graph, ChannelSet::single(), init)
    }

    /// Creates an engine over `graph` and an explicit multiaccess
    /// [`ChannelSet`].
    ///
    /// # Panics
    ///
    /// Panics if the channel set's per-node attachment table does not cover
    /// exactly the graph's node count.
    pub fn with_channels<F: FnMut(NodeId) -> P>(
        graph: &'g Graph,
        channels: ChannelSet,
        mut init: F,
    ) -> Self {
        if let Some(len) = channels.table_len() {
            assert_eq!(
                len,
                graph.node_count(),
                "channel attachment table covers {len} nodes, graph has {}",
                graph.node_count()
            );
        }
        let nodes = graph.nodes().map(&mut init).collect();
        let k = channels.channels();
        ReferenceEngine {
            graph,
            nodes,
            channels,
            pending: vec![Vec::new(); graph.node_count()],
            next_pending: vec![Vec::new(); graph.node_count()],
            prev_slots: (0..k).map(|_| SlotOutcome::Idle).collect(),
            prev_lanes: vec![LaneOutcome::Idle; k as usize],
            cost: CostAccount::new(),
            chan_cost: vec![CostAccount::new(); k as usize],
            round: 0,
            faults: None,
            sparse: false,
            woken: Vec::new(),
            next_woken: Vec::new(),
            step_all: false,
            last_stepped: Vec::new(),
        }
    }

    /// Switches the engine to sparse (active-set) stepping; the brute-force
    /// counterpart of
    /// [`SyncEngine::enable_sparse_stepping`](crate::SyncEngine::enable_sparse_stepping),
    /// with the same frontier-safety contract on the protocol.  Instead of
    /// maintaining a frontier incrementally, every round recomputes the
    /// active set from full state — a node steps iff it is operational and
    /// has a non-empty pending queue, hears a non-idle outcome on an
    /// attached channel, was promoted to `Operational` this round, asked
    /// for a wakeup via [`RoundIo::wake_me`] last round, or a step-all
    /// event (round 0, re-attachment, `update_nodes`) is pending.
    ///
    /// # Panics
    ///
    /// Panics if rounds have already executed.
    pub fn enable_sparse_stepping(&mut self) {
        assert_eq!(
            self.round, 0,
            "sparse stepping must be enabled before round 0"
        );
        let n = self.graph.node_count();
        self.sparse = true;
        self.step_all = true;
        self.woken = vec![false; n];
        self.next_woken = vec![false; n];
    }

    /// `true` when sparse (active-set) stepping is enabled.
    pub fn sparse_stepping(&self) -> bool {
        self.sparse
    }

    /// Node indices stepped in the last executed round, ascending; `None`
    /// under dense stepping.  The `frontier_properties` proptests compare
    /// this brute-force set against the flat engine's incremental frontier.
    pub fn last_stepped(&self) -> Option<&[u32]> {
        self.sparse.then_some(self.last_stepped.as_slice())
    }

    /// Installs a deterministic [`FaultPlan`]; must be called before the
    /// first round executes.  Bit-identical semantics to
    /// [`SyncEngine::set_fault_plan`](crate::SyncEngine::set_fault_plan) —
    /// same application points, same seeded draws — pinned by the
    /// `engine_conformance` fault dimension.
    ///
    /// # Panics
    ///
    /// Panics if rounds have already executed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(self.round, 0, "fault plan must be installed before round 0");
        self.faults = Some(FaultSession::new(plan, self.graph.node_count()));
    }

    /// The installed fault session, if any.
    pub fn fault_session(&self) -> Option<&FaultSession> {
        self.faults.as_ref()
    }

    /// Current lifecycle state of node `v` (`Operational` when no fault
    /// plan is installed).
    pub fn fault_lifecycle(&self, v: NodeId) -> NodeLifecycle {
        self.faults
            .as_ref()
            .map_or(NodeLifecycle::Operational, |s| s.lifecycle(v))
    }

    /// Applies the current round's lifecycle transitions and charges the
    /// round's churn; no-op without a fault plan.
    fn apply_fault_round(&mut self) {
        let Some(session) = &mut self.faults else {
            return;
        };
        let nodes = &mut self.nodes;
        let sparse = self.sparse;
        let woken = &mut self.woken;
        session.apply_round(self.round, |v, _, to| {
            if to == NodeLifecycle::Booting {
                nodes[v.index()].on_recover();
            }
            // A boot promotion is a lifecycle wakeup: the node steps this
            // very round (mirrors the flat engine's frontier wake).
            if sparse && to == NodeLifecycle::Operational {
                woken[v.index()] = true;
            }
        });
        session.charge_round(&mut self.cost);
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The multiaccess channel substrate.
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Applies a dynamic attachment snapshot between rounds; identical
    /// semantics to [`SyncEngine::reattach`](crate::SyncEngine::reattach)
    /// (the next round observes pending slot outcomes and gates writes under
    /// the new masks), pinned by the `engine_conformance` suite.
    ///
    /// # Panics
    ///
    /// Panics if `masks` does not cover exactly the graph's node count or a
    /// mask addresses a channel beyond the set's `K`.
    pub fn reattach(&mut self, masks: &[u64]) {
        assert_eq!(
            masks.len(),
            self.graph.node_count(),
            "re-attachment covers {} nodes, graph has {}",
            masks.len(),
            self.graph.node_count()
        );
        self.channels.reattach(masks);
        // Attachment changes what every node hears next round.
        if self.sparse {
            self.step_all = true;
        }
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Mutably visits every node's protocol state between rounds; the
    /// clone-path counterpart of
    /// [`SyncEngine::update_nodes`](crate::SyncEngine::update_nodes) (this
    /// engine rescans for quiescence, so no counter maintenance is needed).
    pub fn update_nodes<F: FnMut(NodeId, &mut P)>(&mut self, mut f: F) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            f(NodeId(i), node);
        }
        // Arbitrary state edits invalidate any sparsity assumption.
        if self.sparse {
            self.step_all = true;
        }
    }

    /// Immutable access to all protocol states, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Per-channel breakdown of the channel-scoped counters of
    /// [`cost`](Self::cost); see
    /// [`SyncEngine::channel_costs`](crate::SyncEngine::channel_costs).
    pub fn channel_costs(&self) -> &[CostAccount] {
        &self.chan_cost
    }

    /// The cost account accumulated so far.
    pub fn cost(&self) -> &CostAccount {
        &self.cost
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// State (idle / success / collision) of channel `chan`'s most recently
    /// resolved slot.
    pub fn last_slot_state(&self, chan: ChannelId) -> SlotState {
        SlotState::from(&self.prev_slots[chan.index()])
    }

    /// Returns `true` when every node is done, no message is in flight, and
    /// every channel's last slot was idle (a non-idle outcome is feedback
    /// every attached node still gets to hear — see
    /// [`SyncEngine::is_quiescent`](crate::SyncEngine::is_quiescent)).
    /// O(n + K): full rescan, as in the original implementation.  Nodes in
    /// an exempt lifecycle state (`Off` / `Crashed`) count as settled, as in
    /// the flat engine.
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, p)| {
            p.is_done()
                || self
                    .faults
                    .as_ref()
                    .is_some_and(|s| s.lifecycle(NodeId(i)).is_exempt())
        }) && self.pending.iter().all(Vec::is_empty)
            && self.prev_slots.iter().all(SlotOutcome::is_idle)
            && self.prev_lanes.iter().all(LaneOutcome::is_idle)
    }

    /// Outcome of channel `chan`'s most recently resolved lane sub-slot.
    pub fn last_lanes(&self, chan: ChannelId) -> LaneOutcome {
        self.prev_lanes[chan.index()]
    }

    /// Executes one round for every node and resolves one slot per channel.
    ///
    /// With a fault plan installed: lifecycle transitions apply first, only
    /// `Operational` nodes step (a skipped node's pending queue is discarded
    /// unread by the swap — inbound messages to a crashed node are lost
    /// without being counted as drops), dropped sends never enter the
    /// next-round queues, and erased slots overwrite the resolved outcome.
    pub fn step_round(&mut self) {
        if self.sparse {
            // Rotate the wakeup buffers: last round's `wake_me` requests
            // become this round's wakes, and boot promotions applied below
            // join them.
            std::mem::swap(&mut self.woken, &mut self.next_woken);
            self.next_woken.fill(false);
            self.last_stepped.clear();
        }
        self.apply_fault_round();
        for queue in &mut self.next_pending {
            queue.clear(); // keep capacity: the pooled half of the buffer pair
        }
        let mut writes: Vec<(ChannelId, NodeId, P::Msg)> = Vec::new();
        let mut lane_writes: Vec<(ChannelId, NodeId, u64)> = Vec::new();
        let mut messages_sent: u64 = 0;
        let mut dropped: u64 = 0;

        let ReferenceEngine {
            graph,
            nodes,
            channels,
            pending,
            next_pending,
            prev_slots,
            prev_lanes,
            round,
            faults,
            sparse,
            woken,
            next_woken,
            step_all,
            last_stepped,
            ..
        } = self;
        let step_all = std::mem::take(step_all);
        for v in graph.nodes() {
            if faults.as_ref().is_some_and(|s| !s.is_operational(v)) {
                continue;
            }
            if *sparse {
                // Brute-force active-set membership, recomputed from full
                // state: this is the specification the flat engine's
                // incremental frontier must match.
                let mask = channels.mask(v);
                let hears_slot = prev_slots
                    .iter()
                    .enumerate()
                    .any(|(c, o)| mask & (1 << c) != 0 && !o.is_idle())
                    || prev_lanes
                        .iter()
                        .enumerate()
                        .any(|(c, l)| mask & (1 << c) != 0 && !l.is_idle());
                let active =
                    step_all || !pending[v.index()].is_empty() || woken[v.index()] || hears_slot;
                if !active {
                    continue;
                }
                last_stepped.push(v.index() as u32);
            }
            let mut outbox = OutboxBuffer::new();
            let mut io = RoundIo {
                node: v,
                round: *round,
                neighbors: graph.neighbors(v),
                inbox: Inbox::direct(&pending[v.index()]),
                slots: Slots::Direct(prev_slots),
                lanes: prev_lanes.as_slice(),
                attached: channels.mask(v),
                outbox: &mut outbox,
            };
            nodes[v.index()].step(&mut io);
            messages_sent += outbox.len() as u64;
            if *sparse {
                outbox.take_wakes(|w| next_woken[w.index()] = true);
            }
            // Channel writes move out of the staging arena first (owned, as
            // when the seed staged them in an `Option<M>`), because draining
            // the sends retires the payload epoch.
            outbox.take_channel_writes(|chan, from, msg| writes.push((chan, from, msg)));
            outbox.take_lane_writes(|chan, from, word| lane_writes.push((chan, from, word)));
            for (to, msg) in outbox.drain_sends() {
                // Drop at the delivery boundary: sent (counted above), never
                // queued for the receiver.
                if faults
                    .as_ref()
                    .is_some_and(|s| s.drops_message(*round, v, to))
                {
                    dropped += 1;
                    continue;
                }
                next_pending[to.index()].push((v, msg));
            }
        }

        // Clone-path slot resolution: each winner is cloned into its outcome,
        // exactly as the seed's single-channel `resolve_slot`.
        self.prev_slots = resolve_slots(self.channels.channels(), &writes);
        self.cost.add_messages(messages_sent);
        if dropped > 0 {
            self.cost.add_dropped_messages(dropped);
        }
        self.cost.add_round();
        let k = self.channels.channels() as usize;
        let mut counts = vec![0u64; k];
        for (chan, _, _) in &writes {
            counts[chan.index()] += 1;
        }
        for (c, count) in counts.into_iter().enumerate() {
            self.chan_cost[c].add_round();
            // Erasure at the resolve boundary, busy slots only: the cloned
            // winner (if any) is discarded and replaced by the distinguished
            // `Erased` feedback.
            if count > 0
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|s| s.erases_slot(self.round, ChannelId(c as u16)))
            {
                self.prev_slots[c] = SlotOutcome::Erased;
                self.cost.add_erased_slot(count);
                self.chan_cost[c].add_erased_slot(count);
            } else {
                self.cost.add_channel_slot(count);
                self.chan_cost[c].add_channel_slot(count);
            }
        }
        // Lane sub-slots: the OR-merged words, with the erasure sharing the
        // channel's slot draw and corruption flipping one seeded bit of the
        // resolved word — bit-identical semantics to the flat engine.
        self.prev_lanes = resolve_lanes(self.channels.channels(), &lane_writes);
        let mut lane_counts = vec![0u64; k];
        for (chan, _, _) in &lane_writes {
            lane_counts[chan.index()] += 1;
        }
        for (c, count) in lane_counts.into_iter().enumerate() {
            if count == 0 {
                continue;
            }
            let chan = ChannelId(c as u16);
            if self
                .faults
                .as_ref()
                .is_some_and(|s| s.erases_slot(self.round, chan))
            {
                self.prev_lanes[c] = LaneOutcome::Erased;
                self.cost.add_erased_lanes(count);
                self.chan_cost[c].add_erased_lanes(count);
            } else {
                if let Some(bit) = self
                    .faults
                    .as_ref()
                    .and_then(|s| s.plan().corrupts_lane(self.round, chan))
                {
                    if let LaneOutcome::Word(w) = &mut self.prev_lanes[c] {
                        *w ^= 1u64 << bit;
                    }
                    self.cost.add_corrupted_payloads(1);
                    self.chan_cost[c].add_corrupted_payloads(1);
                }
                self.cost.add_lane_slot(count);
                self.chan_cost[c].add_lane_slot(count);
            }
        }
        std::mem::swap(&mut self.pending, &mut self.next_pending);
        self.round += 1;
    }

    /// Runs until quiescence or until `max_rounds` rounds have elapsed in total.
    pub fn run(&mut self, max_rounds: u64) -> RunOutcome {
        while self.round < max_rounds {
            if self.is_quiescent() {
                return RunOutcome::Completed { rounds: self.round };
            }
            self.step_round();
        }
        if self.is_quiescent() {
            RunOutcome::Completed { rounds: self.round }
        } else {
            RunOutcome::RoundLimit { rounds: self.round }
        }
    }

    /// Consumes the engine, returning the node states and the cost account.
    pub fn into_parts(self) -> (Vec<P>, CostAccount) {
        (self.nodes, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncEngine;
    use netsim_graph::generators;

    /// Gossip-max: every node floods the largest id it has seen until nothing
    /// new arrives; exercises inboxes, outboxes, and quiescence together.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct GossipMax {
        best: u64,
        started: bool,
    }

    impl Protocol for GossipMax {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            let mut learned = !self.started;
            self.started = true;
            for (_, &v) in io.inbox() {
                if v > self.best {
                    self.best = v;
                    learned = true;
                }
            }
            if learned {
                io.send_all(self.best);
            }
        }
        fn is_done(&self) -> bool {
            self.started
        }
    }

    #[test]
    fn reference_and_flat_engines_agree() {
        for (g, limit) in [
            (generators::ring(17), 64),
            (generators::Family::Grid.generate(36, 1), 64),
            (generators::random_connected(40, 0.1, 9), 64),
        ] {
            let init = |id: NodeId| GossipMax {
                best: (id.index() as u64).wrapping_mul(2654435761) % 1000,
                started: false,
            };
            let mut fast = SyncEngine::new(&g, init);
            let mut slow = ReferenceEngine::new(&g, init);
            let fast_out = fast.run(limit);
            let slow_out = slow.run(limit);
            assert_eq!(fast_out, slow_out);
            assert!(fast_out.is_completed());
            let (fast_nodes, fast_cost) = fast.into_parts();
            let (slow_nodes, slow_cost) = slow.into_parts();
            assert_eq!(fast_nodes, slow_nodes);
            assert_eq!(fast_cost, slow_cost);
        }
    }

    #[test]
    fn engines_agree_under_faults() {
        use crate::FaultPlan;
        let plans = [
            FaultPlan::from_rates(101, 0.3, 0.0, 0.0, 0.0),
            FaultPlan::from_rates(102, 0.0, 0.3, 0.0, 0.0),
            FaultPlan::from_rates(103, 0.1, 0.1, 0.05, 0.25),
        ];
        for (g, limit) in [
            (generators::ring(17), 64),
            (generators::random_connected(40, 0.1, 9), 64),
        ] {
            for plan in &plans {
                let init = |id: NodeId| GossipMax {
                    best: (id.index() as u64).wrapping_mul(2654435761) % 1000,
                    started: false,
                };
                let mut fast = SyncEngine::new(&g, init);
                let mut slow = ReferenceEngine::new(&g, init);
                fast.set_fault_plan(plan.clone());
                slow.set_fault_plan(plan.clone());
                let fast_out = fast.run(limit);
                let slow_out = slow.run(limit);
                assert_eq!(fast_out, slow_out);
                for v in g.nodes() {
                    assert_eq!(fast.fault_lifecycle(v), slow.fault_lifecycle(v));
                }
                let (fast_nodes, fast_cost) = fast.into_parts();
                let (slow_nodes, slow_cost) = slow.into_parts();
                assert_eq!(fast_nodes, slow_nodes);
                assert_eq!(fast_cost, slow_cost);
            }
        }
    }
}
