//! The unified engine control surface: one trait, one builder, four
//! substrates.
//!
//! Every execution substrate in this workspace — the flat [`SyncEngine`],
//! the clone-path [`ReferenceEngine`], the [`AsyncEngine`] under the
//! [`Lockstep`] adapter, and (in the `netsim-io` crate) the loopback-UDP
//! `WireNet` — exposes the same conceptual surface: construct over a graph
//! and a [`ChannelSet`], step rounds, re-attach channels between rounds,
//! edit node states between rounds, install a [`FaultPlan`], read the
//! [`CostAccount`].  Before this module each driver (the sharded-MST merge
//! driver, the sharded global-function pipeline, the conformance harness)
//! re-dispatched over that surface by hand with a per-substrate `enum` and
//! four copies of every call.  [`EngineControl`] collapses the four copies
//! into one trait so drivers are written once, generic over substrate, and
//! [`EngineBuilder`] is the matching constructor surface.
//!
//! # Determinism contract
//!
//! For a **frontier-safe, delay-insensitive** protocol (the
//! [`RoundIo::wake_me`](crate::RoundIo::wake_me) contract; every protocol in
//! `multimedia` qualifies), any two [`EngineControl`] substrates driven by
//! the same call sequence — the same constructor inputs, the same
//! interleaving of [`run`](EngineControl::run) /
//! [`reattach`](EngineControl::reattach) /
//! [`update_nodes`](EngineControl::update_nodes) calls, the same
//! [`FaultPlan`] — produce **bit-identical observables**: node states, round
//! counts, lifecycles, the reconciled [`cost`](EngineControl::cost), and the
//! reconciled per-channel [`channel_costs`](EngineControl::channel_costs).
//! The trait impls fold each substrate's structural accounting offsets into
//! `cost`/`channel_costs` (the lockstep adapter's one axiomatic all-idle
//! round — see [`reconciled_cost_faulted`])
//! so generic drivers never reconcile by hand.  This is the contract the
//! `engine_conformance` suite and the `multimedia` four-substrate pinning
//! tests enforce, and it is what makes a driver written against this trait
//! a *specification*: run it on the reference engine to define the answer,
//! on the flat engine to get it fast, on the wire backend to get it over
//! real sockets.
//!
//! # Example
//!
//! ```
//! use netsim_graph::{generators, NodeId};
//! use netsim_sim::{protocols::BfsBuild, EngineBuilder, EngineControl};
//!
//! let g = generators::ring(8);
//! let builder = EngineBuilder::new(&g);
//! // Same driver, two substrates.
//! fn drive<P, E: EngineControl<P>>(mut eng: E) -> u64
//! where
//!     P: netsim_sim::Protocol,
//! {
//!     assert!(eng.run(100).is_completed());
//!     eng.round()
//! }
//! let init = |id: NodeId| BfsBuild::new(id, NodeId(0));
//! let flat = drive(builder.build_flat(init));
//! let reference = drive(builder.build_reference(init));
//! assert_eq!(flat, reference);
//! ```

use crate::async_engine::AsyncEngine;
use crate::channel::ChannelSet;
use crate::engine::{RunOutcome, SyncEngine};
use crate::fault::{FaultPlan, FaultSession, NodeLifecycle};
use crate::lockstep::{
    lockstep_config, reconciled_channel_costs, reconciled_cost_faulted, Lockstep,
};
use crate::metrics::CostAccount;
use crate::node::Protocol;
use crate::reference::ReferenceEngine;
use netsim_graph::{Graph, NodeId};

/// The surface shared by every execution substrate, written once so drivers
/// (re-sharding, sharded MST, the global-function pipeline, conformance
/// harnesses) are generic over it.  See the [module docs](self) for the
/// determinism contract.
///
/// All between-rounds operations ([`reattach`](Self::reattach),
/// [`update_nodes`](Self::update_nodes)) keep each substrate's documented
/// snapshot semantics: the next round observes the previous round's
/// outcomes, gated by the new attachment.  [`set_fault_plan`](Self::set_fault_plan)
/// is before-round-0 only, like the inherent methods it forwards to.
pub trait EngineControl<P: Protocol> {
    /// Executes exactly one round.
    fn step_round(&mut self);

    /// Runs until quiescence or until `max_rounds` **total** rounds have
    /// elapsed (an absolute limit, not a relative budget: continue a run
    /// with `run(eng.round() + budget)`).
    fn run(&mut self, max_rounds: u64) -> RunOutcome;

    /// Rounds accounted so far — always equal to
    /// [`cost()`](Self::cost)`.rounds`.  On the lockstep substrate this
    /// includes the adapter's axiomatic all-idle round (the reconciliation
    /// offset of [`reconciled_cost`](crate::reconciled_cost)), so a freshly
    /// built lockstep engine reports round 1 where the synchronous engines
    /// report 0; after any completed run the values agree bit-for-bit.
    fn round(&self) -> u64;

    /// Whether the substrate's quiescence condition holds.
    fn is_quiescent(&self) -> bool;

    /// The cost account, **substrate-reconciled**: structural accounting
    /// offsets (the lockstep adapter's axiomatic all-idle round and its
    /// final-round churn) are already folded in, so equal call sequences
    /// give bit-identical accounts on every substrate.
    fn cost(&self) -> CostAccount;

    /// Per-channel breakdown of the channel-scoped counters of
    /// [`cost`](Self::cost), substrate-reconciled like it.  Entry `c` is
    /// channel `c`'s rounds, slot classification, write attempts, and lane
    /// counters; point-to-point counters stay zero.  Deltas of this vector
    /// are the contention signal
    /// [`ContentionMonitor`](crate::reshard::ContentionMonitor) consumes.
    fn channel_costs(&self) -> Vec<CostAccount>;

    /// Number of channels `K` in the engine's [`ChannelSet`].
    fn channel_count(&self) -> u16;

    /// Replaces the per-node attachment table between rounds
    /// (`masks[v]` = bitmask of channels node `v` is attached to).
    fn reattach(&mut self, masks: &[u64]);

    /// Runs `f` over every node's protocol state between rounds.
    fn update_nodes(&mut self, f: &mut dyn FnMut(NodeId, &mut P));

    /// Read access to node `v`'s protocol state.
    fn node(&self, v: NodeId) -> &P;

    /// Installs a fault plan; before round 0 only.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// The live fault session, when a plan is installed.
    fn fault_session(&self) -> Option<&FaultSession>;

    /// Switches to sparse (active-set) stepping; before round 0 only.
    /// Sparse runs are pinned bit-identical to dense runs for
    /// frontier-safe protocols, so substrates without a dense/sparse
    /// distinction (the wire backend steps dense by construction) accept
    /// this as a no-op.
    fn enable_sparse(&mut self);

    /// Node `v`'s lifecycle ([`NodeLifecycle::Operational`] when no plan is
    /// installed).
    fn lifecycle(&self, v: NodeId) -> NodeLifecycle {
        self.fault_session()
            .map_or(NodeLifecycle::Operational, |s| s.lifecycle(v))
    }
}

impl<'g, P: Protocol> EngineControl<P> for SyncEngine<'g, P> {
    fn step_round(&mut self) {
        SyncEngine::step_round(self);
    }
    fn run(&mut self, max_rounds: u64) -> RunOutcome {
        SyncEngine::run(self, max_rounds)
    }
    fn round(&self) -> u64 {
        SyncEngine::round(self)
    }
    fn is_quiescent(&self) -> bool {
        SyncEngine::is_quiescent(self)
    }
    fn cost(&self) -> CostAccount {
        *SyncEngine::cost(self)
    }
    fn channel_costs(&self) -> Vec<CostAccount> {
        SyncEngine::channel_costs(self).to_vec()
    }
    fn channel_count(&self) -> u16 {
        self.channels().channels()
    }
    fn reattach(&mut self, masks: &[u64]) {
        SyncEngine::reattach(self, masks);
    }
    fn update_nodes(&mut self, f: &mut dyn FnMut(NodeId, &mut P)) {
        SyncEngine::update_nodes(self, f);
    }
    fn node(&self, v: NodeId) -> &P {
        SyncEngine::node(self, v)
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        SyncEngine::set_fault_plan(self, plan);
    }
    fn fault_session(&self) -> Option<&FaultSession> {
        SyncEngine::fault_session(self)
    }
    fn enable_sparse(&mut self) {
        self.enable_sparse_stepping();
    }
}

impl<'g, P: Protocol> EngineControl<P> for ReferenceEngine<'g, P> {
    fn step_round(&mut self) {
        ReferenceEngine::step_round(self);
    }
    fn run(&mut self, max_rounds: u64) -> RunOutcome {
        ReferenceEngine::run(self, max_rounds)
    }
    fn round(&self) -> u64 {
        ReferenceEngine::round(self)
    }
    fn is_quiescent(&self) -> bool {
        ReferenceEngine::is_quiescent(self)
    }
    fn cost(&self) -> CostAccount {
        *ReferenceEngine::cost(self)
    }
    fn channel_costs(&self) -> Vec<CostAccount> {
        ReferenceEngine::channel_costs(self).to_vec()
    }
    fn channel_count(&self) -> u16 {
        self.channels().channels()
    }
    fn reattach(&mut self, masks: &[u64]) {
        ReferenceEngine::reattach(self, masks);
    }
    fn update_nodes(&mut self, f: &mut dyn FnMut(NodeId, &mut P)) {
        ReferenceEngine::update_nodes(self, f);
    }
    fn node(&self, v: NodeId) -> &P {
        ReferenceEngine::node(self, v)
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        ReferenceEngine::set_fault_plan(self, plan);
    }
    fn fault_session(&self) -> Option<&FaultSession> {
        ReferenceEngine::fault_session(self)
    }
    fn enable_sparse(&mut self) {
        self.enable_sparse_stepping();
    }
}

/// The async substrate participates through the [`Lockstep`] adapter (the
/// round-for-round replay configuration, [`lockstep_config`]); the impl
/// folds the adapter's structural accounting offset into
/// [`cost`](EngineControl::cost) / [`channel_costs`](EngineControl::channel_costs)
/// and unwraps the adapter for node access, so generic drivers see the
/// wrapped protocol directly.
impl<'g, P: Protocol> EngineControl<P> for AsyncEngine<'g, Lockstep<P>> {
    fn step_round(&mut self) {
        let next = self.tick() + 1;
        AsyncEngine::run(self, next);
    }
    fn run(&mut self, max_rounds: u64) -> RunOutcome {
        // `round()` counts the adapter's axiomatic round on top of the
        // engine's tick, so the absolute round budget maps to one fewer
        // tick; the reported round count carries the same offset.
        let completed = AsyncEngine::run(self, max_rounds.saturating_sub(1));
        let rounds = self.tick() + 1;
        if completed {
            RunOutcome::Completed { rounds }
        } else {
            RunOutcome::RoundLimit { rounds }
        }
    }
    fn round(&self) -> u64 {
        self.tick() + 1
    }
    fn is_quiescent(&self) -> bool {
        AsyncEngine::is_quiescent(self)
    }
    fn cost(&self) -> CostAccount {
        let crashed =
            AsyncEngine::fault_session(self).map_or(0, FaultSession::non_operational_count);
        reconciled_cost_faulted(
            *AsyncEngine::cost(self),
            self.channels().channels(),
            crashed,
        )
    }
    fn channel_costs(&self) -> Vec<CostAccount> {
        reconciled_channel_costs(AsyncEngine::channel_costs(self))
    }
    fn channel_count(&self) -> u16 {
        self.channels().channels()
    }
    fn reattach(&mut self, masks: &[u64]) {
        AsyncEngine::reattach(self, masks);
    }
    fn update_nodes(&mut self, f: &mut dyn FnMut(NodeId, &mut P)) {
        AsyncEngine::update_nodes(self, |v, adapter| f(v, adapter.inner_mut()));
    }
    fn node(&self, v: NodeId) -> &P {
        AsyncEngine::node(self, v).inner()
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        AsyncEngine::set_fault_plan(self, plan);
    }
    fn fault_session(&self) -> Option<&FaultSession> {
        AsyncEngine::fault_session(self)
    }
    fn enable_sparse(&mut self) {
        self.enable_sparse_boundaries();
    }
}

/// Constructor surface matching [`EngineControl`]: collect the run's
/// configuration (graph, [`ChannelSet`], optional [`FaultPlan`], sparse
/// stepping) once, then build any substrate from it.  The builder is
/// reusable — each `build_*` call clones the configuration — so conformance
/// harnesses construct every substrate from one literal description of the
/// run.
///
/// The `netsim-io` crate adds the fourth substrate with
/// `WireNet::from_builder(&builder, hosts, init)`.
///
/// ```
/// use netsim_graph::generators;
/// use netsim_sim::{ChannelSet, EngineBuilder, EngineControl, protocols::ChannelShardedSum};
///
/// let g = generators::ring(32);
/// let builder = EngineBuilder::new(&g)
///     .channels(ChannelShardedSum::channel_set(32, 4))
///     .sparse(true);
/// let mut eng = builder.build_flat(|v| ChannelShardedSum::new(v, 32, 4, 1));
/// assert!(eng.run(100).is_completed());
/// ```
#[derive(Clone, Debug)]
pub struct EngineBuilder<'g> {
    graph: &'g Graph,
    channels: ChannelSet,
    plan: Option<FaultPlan>,
    sparse: bool,
}

impl<'g> EngineBuilder<'g> {
    /// Starts a builder over `graph` with the paper's single-channel model,
    /// dense stepping, and no fault plan.
    pub fn new(graph: &'g Graph) -> Self {
        EngineBuilder {
            graph,
            channels: ChannelSet::single(),
            plan: None,
            sparse: false,
        }
    }

    /// Replaces the channel substrate.
    pub fn channels(mut self, channels: ChannelSet) -> Self {
        self.channels = channels;
        self
    }

    /// Installs a fault plan on every engine built.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Enables sparse (active-set) stepping on every engine built; the
    /// protocol must be frontier-safe.  No-op on substrates that always
    /// step dense (the wire backend).
    pub fn sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }

    /// The graph every engine is built over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The configured channel substrate.
    pub fn channel_set(&self) -> &ChannelSet {
        &self.channels
    }

    /// The configured fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Whether sparse stepping is configured.
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// Builds the flat arena-backed [`SyncEngine`].
    pub fn build_flat<P: Protocol, F: FnMut(NodeId) -> P>(&self, init: F) -> SyncEngine<'g, P> {
        let mut eng = SyncEngine::with_channels(self.graph, self.channels.clone(), init);
        if self.sparse {
            eng.enable_sparse_stepping();
        }
        if let Some(plan) = &self.plan {
            eng.set_fault_plan(plan.clone());
        }
        eng
    }

    /// Builds the clone-path [`ReferenceEngine`] (the executable
    /// specification).
    pub fn build_reference<P: Protocol, F: FnMut(NodeId) -> P>(
        &self,
        init: F,
    ) -> ReferenceEngine<'g, P> {
        let mut eng = ReferenceEngine::with_channels(self.graph, self.channels.clone(), init);
        if self.sparse {
            eng.enable_sparse_stepping();
        }
        if let Some(plan) = &self.plan {
            eng.set_fault_plan(plan.clone());
        }
        eng
    }

    /// Builds the [`AsyncEngine`] under the [`Lockstep`] replay adapter
    /// (ticks advance round-for-round; the [`EngineControl`] impl reconciles
    /// the accounting offset).
    pub fn build_lockstep<P: Protocol, F: FnMut(NodeId) -> P>(
        &self,
        mut init: F,
    ) -> AsyncEngine<'g, Lockstep<P>> {
        let k = self.channels.channels();
        let mut eng =
            AsyncEngine::with_channels(self.graph, lockstep_config(), self.channels.clone(), |v| {
                Lockstep::new(init(v), k)
            });
        if self.sparse {
            eng.enable_sparse_boundaries();
        }
        if let Some(plan) = &self.plan {
            eng.set_fault_plan(plan.clone());
        }
        eng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::ChannelShardedSum;
    use netsim_graph::generators;

    fn drive<P: Protocol, E: EngineControl<P>>(mut eng: E) -> (u64, CostAccount, Vec<CostAccount>) {
        assert!(eng.run(200).is_completed());
        (eng.round(), eng.cost(), eng.channel_costs())
    }

    #[test]
    fn three_substrates_agree_through_the_trait() {
        let g = generators::ring(24);
        let (n, k) = (24, 4);
        let builder = EngineBuilder::new(&g).channels(ChannelShardedSum::channel_set(n, k));
        let init = |v: netsim_graph::NodeId| ChannelShardedSum::new(v, n, k, v.index() as u64);
        let flat = drive(builder.build_flat(init));
        let reference = drive(builder.build_reference(init));
        let lockstep = drive(builder.build_lockstep(init));
        assert_eq!(flat, reference);
        assert_eq!(flat, lockstep);
        // The per-channel accounts decompose the global channel-scoped
        // counters exactly.
        let (_, cost, chans) = flat;
        assert_eq!(chans.len(), k as usize);
        assert_eq!(
            chans.iter().map(|c| c.channel_writes).sum::<u64>(),
            cost.channel_writes
        );
        assert_eq!(
            chans
                .iter()
                .map(|c| c.slots_idle + c.slots_success + c.slots_collision)
                .sum::<u64>(),
            cost.slots_idle + cost.slots_success + cost.slots_collision
        );
        assert!(chans.iter().all(|c| c.rounds == cost.rounds));
        assert!(chans.iter().all(|c| c.p2p_messages == 0));
    }

    #[test]
    fn builder_applies_sparse_and_plan() {
        let g = generators::ring(16);
        let (n, k) = (16, 2);
        let plan = FaultPlan::from_rates(7, 0.2, 0.0, 0.0, 0.0);
        let builder = EngineBuilder::new(&g)
            .channels(ChannelShardedSum::channel_set(n, k))
            .fault_plan(plan)
            .sparse(true);
        let init = |v: netsim_graph::NodeId| ChannelShardedSum::new(v, n, k, v.index() as u64);
        let flat = drive(builder.build_flat(init));
        let reference = drive(builder.build_reference(init));
        let lockstep = drive(builder.build_lockstep(init));
        assert_eq!(flat, reference);
        assert_eq!(flat, lockstep);
        assert!(flat.1.erased_slots > 0, "the erasure plan must have fired");
        // Dense runs of the same configuration are bit-identical.
        let dense = drive(builder.clone().sparse(false).build_flat(init));
        assert_eq!(flat, dense);
    }
}
