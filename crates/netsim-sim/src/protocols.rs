//! Reusable building-block protocols.
//!
//! These are the primitives the paper composes repeatedly:
//!
//! * [`BfsBuild`] — synchronous breadth-first spanning-tree construction from
//!   a root (Gallager 1982), used by the point-to-point baselines and by the
//!   randomized partition's component growth;
//! * [`Convergecast`] — "broadcast and respond" / *propagation of information
//!   with feedback* (Segall 1983) over a known rooted tree, aggregating values
//!   up to the root with an arbitrary associative combiner — the paper's
//!   Step 1 ("count the nodes of the fragment") and the local stage of the
//!   global-sensitive-function algorithm (Section 5.1);
//! * [`TreeBroadcast`] — dissemination of a value from the root down a known
//!   rooted tree, the "feedback" direction of PIF;
//! * [`ChannelShardedSum`] — global-sum aggregation sharded over the `K`
//!   channels of a [`ChannelSet`], the multi-channel scenario family of the
//!   engine benchmark.

use crate::channel::{ChannelId, ChannelSet, SlotOutcome};
use crate::node::{Protocol, RoundIo};
use netsim_graph::NodeId;

// ---------------------------------------------------------------------------
// BFS tree construction
// ---------------------------------------------------------------------------

/// Message of the BFS builder: `Explore(distance_of_sender)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Explore(pub u32);

/// Synchronous BFS spanning-tree construction from a single root.
///
/// In round `r` exactly the nodes at distance `r` from the root adopt a
/// parent (the lowest-id neighbour that reached them) and forward the wave.
/// After the run, [`BfsBuild::parent`] / [`BfsBuild::depth`] describe the
/// BFS tree; total time is `ecc(root) + O(1)` rounds and total messages are
/// `2m` (each edge is crossed at most twice).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsBuild {
    id: NodeId,
    is_root: bool,
    parent: Option<NodeId>,
    depth: Option<u32>,
    forwarded: bool,
}

impl BfsBuild {
    /// Creates the per-node state; `root` is the BFS source.
    pub fn new(id: NodeId, root: NodeId) -> Self {
        BfsBuild {
            id,
            is_root: id == root,
            parent: None,
            depth: if id == root { Some(0) } else { None },
            forwarded: false,
        }
    }

    /// Parent in the BFS tree (`None` for the root and for unreached nodes).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Distance from the root, once reached.
    pub fn depth(&self) -> Option<u32> {
        self.depth
    }

    /// Returns `true` when this node has been reached by the wave.
    pub fn reached(&self) -> bool {
        self.depth.is_some()
    }
}

impl Protocol for BfsBuild {
    type Msg = Explore;

    fn step(&mut self, io: &mut RoundIo<'_, Explore>) {
        if self.depth.is_none() {
            // Adopt the best (lowest-id) neighbour that reached us this round.
            let best = io
                .inbox()
                .iter()
                .map(|(from, &Explore(d))| (from, d))
                .min_by_key(|&(from, d)| (d, from));
            if let Some((from, d)) = best {
                self.parent = Some(from);
                self.depth = Some(d + 1);
            }
        }
        if let Some(d) = self.depth {
            if !self.forwarded {
                io.send_all(Explore(d));
                self.forwarded = true;
            }
        }
        let _ = self.is_root;
        let _ = self.id;
    }

    fn is_done(&self) -> bool {
        self.forwarded
    }
}

// ---------------------------------------------------------------------------
// Convergecast over a known rooted tree
// ---------------------------------------------------------------------------

/// Aggregation ("response") message carrying a partial value of type `V`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partial<V>(pub V);

/// Convergecast of values up a **known** rooted tree with an associative
/// combiner.
///
/// Every node is given its parent and its number of children.  Leaves send
/// their value to their parent in the first round; an internal node responds
/// to its parent only after receiving the responses of all its children,
/// exactly as in Step 1 of the paper's deterministic partition.  The run
/// takes `depth(tree) + O(1)` rounds and `n - 1` messages; at the end the
/// root's [`Convergecast::result`] holds the combined value of the whole tree.
#[derive(Clone, Debug)]
pub struct Convergecast<V, F> {
    parent: Option<NodeId>,
    pending_children: usize,
    value: V,
    combine: F,
    sent: bool,
}

impl<V: Clone, F: Fn(&V, &V) -> V> Convergecast<V, F> {
    /// Creates the per-node state.
    ///
    /// * `parent` — tree parent (`None` for the root);
    /// * `children` — number of tree children of this node;
    /// * `value` — this node's local input;
    /// * `combine` — associative combiner.
    pub fn new(parent: Option<NodeId>, children: usize, value: V, combine: F) -> Self {
        Convergecast {
            parent,
            pending_children: children,
            value,
            combine,
            sent: false,
        }
    }

    /// The aggregate of this node's subtree (meaningful once the node is done;
    /// at the root this is the global result).
    pub fn result(&self) -> &V {
        &self.value
    }

    /// Returns `true` once every child's response has been absorbed.
    pub fn subtree_complete(&self) -> bool {
        self.pending_children == 0
    }
}

impl<V: Clone, F: Fn(&V, &V) -> V> Protocol for Convergecast<V, F> {
    type Msg = Partial<V>;

    fn step(&mut self, io: &mut RoundIo<'_, Partial<V>>) {
        for (_, Partial(v)) in io.inbox() {
            self.value = (self.combine)(&self.value, v);
            self.pending_children = self.pending_children.saturating_sub(1);
        }
        if self.pending_children == 0 && !self.sent {
            if let Some(p) = self.parent {
                io.send(p, Partial(self.value.clone()));
            }
            self.sent = true;
        }
    }

    fn is_done(&self) -> bool {
        self.sent
    }
}

// ---------------------------------------------------------------------------
// Broadcast down a known rooted tree
// ---------------------------------------------------------------------------

/// Dissemination of a root value down a known rooted tree.
///
/// Each node is given the list of its children; the root starts with the
/// value, every other node learns it from its parent and forwards it.  Takes
/// `depth(tree) + O(1)` rounds and `n - 1` messages.
#[derive(Clone, Debug)]
pub struct TreeBroadcast<V> {
    children: Vec<NodeId>,
    value: Option<V>,
    forwarded: bool,
}

impl<V: Clone> TreeBroadcast<V> {
    /// Creates the per-node state.  The root passes `Some(value)`, all other
    /// nodes pass `None`.
    pub fn new(children: Vec<NodeId>, value: Option<V>) -> Self {
        TreeBroadcast {
            children,
            value,
            forwarded: false,
        }
    }

    /// The received value, once it has arrived.
    pub fn value(&self) -> Option<&V> {
        self.value.as_ref()
    }
}

impl<V: Clone> Protocol for TreeBroadcast<V> {
    type Msg = V;

    fn step(&mut self, io: &mut RoundIo<'_, V>) {
        if self.value.is_none() {
            if let Some((_, v)) = io.inbox().first() {
                self.value = Some(v.clone());
            }
        }
        // Borrow the value and children in place: a step after the forward
        // round touches no heap at all (previously every round cloned the
        // value *and* the children list, even when `forwarded` was set), and
        // the forward round itself clones only the per-child payloads.
        if !self.forwarded {
            if let Some(v) = &self.value {
                for &c in &self.children {
                    io.send(c, v.clone());
                }
                self.forwarded = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.forwarded
    }
}

// ---------------------------------------------------------------------------
// Channel-sharded global sum
// ---------------------------------------------------------------------------

/// Global sum over a `K`-channel [`ChannelSet`]: node `v` is attached to
/// channel `v mod K` and writes its value on that channel when the shard's
/// *turn* reaches its rank (`v div K`); every shard member folds the
/// successes it hears.  Fault-free the turn advances once per round (a
/// shard-local TDMA schedule, so every slot is a success) and after `⌈n/K⌉`
/// rounds each shard knows its shard sum — `K` channels compute `K` partial
/// sums concurrently, cutting the round count by a factor of `K` against the
/// paper's single-channel schedule.
///
/// Under a [`FaultPlan`](crate::FaultPlan) the schedule is *dynamic*: the
/// turn is driven by the shard's shared channel feedback, not by the round
/// number.
///
/// * a **`Success`** folds the heard value and advances the turn (the next
///   rank writes);
/// * an **`Erased`** slot (or a `Collision`) holds the turn — the same
///   writer, which saw the same feedback, retries next round;
/// * an **`Idle`** slot while the turn points at an unwritten rank is a
///   *strike*: after [`ChannelShardedSum::TIMEOUT`] consecutive strikes the
///   shard concludes the rank's owner has crashed and skips it.
///
/// All never-crashed members of a shard observe the identical feedback
/// sequence, so their turn/strike counters evolve in lockstep and at most
/// one node writes per slot — collisions never arise from the protocol
/// itself.  A node that crashes and later recovers rejoins *crashed out*
/// ([`Protocol::on_recover`]): it keeps listening (so it terminates) but
/// never writes again, since its slot may already have been skipped; its
/// own sum is best-effort, and only never-crashed members are guaranteed
/// the exact sum of the values the shard actually heard.
///
/// This is the *channel-sharded scenario family* of the engine benchmark
/// (`experiments --engine`, `channels` and `faults` sections of
/// `BENCH_engine.json`); its delivery semantics are pinned across all three
/// engines by the `engine_conformance` suite, fault schedules included.
/// Build the matching attachment with [`ChannelShardedSum::channel_set`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelShardedSum {
    chan: ChannelId,
    /// This node's slot in the shard-local schedule (`v div K`).
    rank: u64,
    /// Number of members (= ranks) of this node's shard.
    shard_size: u64,
    value: u64,
    sum: u64,
    /// The rank whose write this node is currently waiting to hear.
    turn: u64,
    /// Consecutive idle slots observed while waiting on `turn`.
    strikes: u32,
    /// Set on recovery from a crash: the node keeps listening but never
    /// writes again (its rank may already have been skipped).
    crashed_out: bool,
}

impl ChannelShardedSum {
    /// Consecutive idle slots after which the shard skips the current turn's
    /// rank, concluding its owner has crashed.  An idle slot while a live
    /// writer holds the turn is impossible (the writer retries every round
    /// until its write succeeds), so one strike already implies a dead rank;
    /// the second confirms it across a recovery boundary, where a node
    /// promoted mid-slot has not written yet.
    pub const TIMEOUT: u32 = 2;

    /// Per-node state for node `v` of `n` with `k` channels and local input
    /// `value`.
    pub fn new(v: NodeId, n: usize, k: u16, value: u64) -> Self {
        let k = k as usize;
        let chan = ChannelId((v.index() % k) as u16);
        // Members of shard `c` are the nodes `c, c + k, c + 2k, ...`; the
        // shard of node `v` has `ceil((n - c) / k)` members.
        let shard_size = (n - chan.index()).div_ceil(k) as u64;
        ChannelShardedSum {
            chan,
            rank: (v.index() / k) as u64,
            shard_size,
            value,
            sum: 0,
            turn: 0,
            strikes: 0,
            crashed_out: false,
        }
    }

    /// The sharded attachment this protocol expects: node `v` on channel
    /// `v mod k`.
    pub fn channel_set(n: usize, k: u16) -> ChannelSet {
        ChannelSet::sharded(k, n, |v| ChannelId((v.index() % k as usize) as u16))
    }

    /// Per-node state under an **arbitrary** shard assignment: this node
    /// computes on `chan` as the `rank`-th of `shard_size` members (ranks
    /// are the shard's TDMA schedule, so every member of a shard must
    /// receive a distinct rank in `0..shard_size`).  [`new`](Self::new) is
    /// the `v mod k` special case; adaptive re-sharding
    /// (`netsim_sim::reshard`) reseeds with this after migrating nodes
    /// between channels.
    pub fn with_assignment(chan: ChannelId, rank: u64, shard_size: u64, value: u64) -> Self {
        ChannelShardedSum {
            chan,
            rank,
            shard_size,
            value,
            sum: 0,
            turn: 0,
            strikes: 0,
            crashed_out: false,
        }
    }

    /// Sum of the values of this node's shard (meaningful once done).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The channel this node computes on.
    pub fn channel(&self) -> ChannelId {
        self.chan
    }

    /// `true` once this node has crashed and recovered: it keeps listening
    /// but never writes again, and its own sum is best-effort only.
    pub fn crashed_out(&self) -> bool {
        self.crashed_out
    }
}

impl Protocol for ChannelShardedSum {
    type Msg = u64;

    fn step(&mut self, io: &mut RoundIo<'_, u64>) {
        if self.turn < self.shard_size {
            match io.prev_slot_on(self.chan) {
                SlotOutcome::Success { msg, .. } => {
                    self.sum = self.sum.wrapping_add(*msg);
                    self.turn += 1;
                    self.strikes = 0;
                }
                // The writer saw the same feedback and retries: hold the
                // turn, reset the crash suspicion.
                SlotOutcome::Collision | SlotOutcome::Erased => self.strikes = 0,
                SlotOutcome::Idle => {
                    // Round 0 observes the axiomatic all-idle slots before
                    // time 0 — no rank has had a chance to write yet.
                    if io.round() > 0 {
                        self.strikes += 1;
                        if self.strikes >= Self::TIMEOUT {
                            self.turn += 1;
                            self.strikes = 0;
                        }
                    }
                }
            }
        }
        if self.turn == self.rank && !self.crashed_out {
            io.write_channel_on(self.chan, self.value);
        }
        // The idle-strike timer advances on *idle* slots, which never wake a
        // node under sparse stepping — so an unfinished node arms its own
        // next round explicitly.
        if !self.is_done() {
            io.wake_me();
        }
    }

    fn is_done(&self) -> bool {
        // Every rank has been heard or skipped.
        self.turn >= self.shard_size
    }

    fn on_recover(&mut self) {
        self.crashed_out = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncEngine;
    use crate::fault::{FaultEvent, FaultPlan};
    use netsim_graph::{generators, traversal, SpanningForest};

    #[test]
    fn bfs_build_matches_sequential_bfs() {
        let g = generators::Family::Grid.generate(36, 3);
        let root = NodeId(0);
        let mut eng = SyncEngine::new(&g, |id| BfsBuild::new(id, root));
        let out = eng.run(1000);
        assert!(out.is_completed());
        let reference = traversal::bfs(&g, root);
        for v in g.nodes() {
            assert!(eng.node(v).reached());
            assert_eq!(eng.node(v).depth(), reference.distance(v));
        }
        // Time is eccentricity + O(1); messages are exactly 2m (every node
        // forwards once to all its neighbours).
        assert!(out.rounds() as u32 <= reference.max_distance() + 3);
        assert_eq!(eng.cost().p2p_messages, 2 * g.edge_count() as u64);
    }

    #[test]
    fn bfs_parents_form_valid_forest() {
        let g = generators::random_connected(50, 0.08, 9);
        let root = NodeId(7);
        let mut eng = SyncEngine::new(&g, |id| BfsBuild::new(id, root));
        eng.run(1000);
        let parents: Vec<Option<NodeId>> = g.nodes().map(|v| eng.node(v).parent()).collect();
        let forest = SpanningForest::from_parents(&g, parents).unwrap();
        assert_eq!(forest.tree_count(), 1);
        assert_eq!(forest.roots(), &[root]);
    }

    #[test]
    fn convergecast_sums_path() {
        // Path rooted at node 0: parent of i is i-1, one child each except the last.
        let g = generators::path(6);
        let n = g.node_count();
        let mut eng = SyncEngine::new(&g, |id| {
            let parent = if id.index() == 0 {
                None
            } else {
                Some(NodeId(id.index() - 1))
            };
            let children = usize::from(id.index() + 1 < n);
            Convergecast::new(parent, children, id.index() as u64, |a, b| a + b)
        });
        let out = eng.run(100);
        assert!(out.is_completed());
        assert_eq!(*eng.node(NodeId(0)).result(), (0..6).sum::<u64>());
        assert!(eng.node(NodeId(0)).subtree_complete());
        // n - 1 responses, depth + O(1) rounds.
        assert_eq!(eng.cost().p2p_messages, (n - 1) as u64);
        assert!(out.rounds() <= n as u64 + 2);
    }

    #[test]
    fn convergecast_min_on_star() {
        let g = generators::star(8);
        let values = [50u64, 3, 9, 1, 7, 30, 22, 4];
        let mut eng = SyncEngine::new(&g, |id| {
            let parent = if id.index() == 0 {
                None
            } else {
                Some(NodeId(0))
            };
            let children = if id.index() == 0 { 7 } else { 0 };
            Convergecast::new(parent, children, values[id.index()], |a, b| *a.min(b))
        });
        let out = eng.run(100);
        assert!(out.is_completed());
        assert_eq!(*eng.node(NodeId(0)).result(), 1);
        assert!(out.rounds() <= 4);
    }

    #[test]
    fn channel_sharded_sum_computes_shard_sums() {
        let n = 37;
        let g = generators::ring(n);
        let values: Vec<u64> = (0..n as u64).map(|i| i * 31 + 5).collect();
        for k in [1u16, 4, 16] {
            let mut eng =
                SyncEngine::with_channels(&g, ChannelShardedSum::channel_set(n, k), |v| {
                    ChannelShardedSum::new(v, n, k, values[v.index()])
                });
            let out = eng.run(1000);
            assert!(out.is_completed(), "k={k}");
            // K channels cut the schedule to ceil(n/K) writing rounds plus
            // one observation round.
            assert_eq!(out.rounds(), (n as u64).div_ceil(u64::from(k)) + 1, "k={k}");
            // Every slot of the schedule succeeds: one writer per channel
            // per round.
            assert_eq!(eng.cost().slots_success, n as u64, "k={k}");
            assert_eq!(eng.cost().slots_collision, 0, "k={k}");
            for v in g.nodes() {
                let expected: u64 = (0..n)
                    .filter(|u| u % (k as usize) == v.index() % (k as usize))
                    .map(|u| values[u])
                    .sum();
                assert_eq!(eng.node(v).sum(), expected, "k={k} node {v:?}");
            }
        }
    }

    #[test]
    fn channel_sharded_sum_is_exact_under_erasures() {
        // Erasures only delay the schedule (the blocked writer retries), so
        // every shard still computes its exact sum.
        let n = 37;
        let g = generators::ring(n);
        let values: Vec<u64> = (0..n as u64).map(|i| i * 31 + 5).collect();
        let k = 4u16;
        let mut eng = SyncEngine::with_channels(&g, ChannelShardedSum::channel_set(n, k), |v| {
            ChannelShardedSum::new(v, n, k, values[v.index()])
        });
        eng.set_fault_plan(FaultPlan::from_rates(0xE5A5, 0.25, 0.0, 0.0, 0.0));
        let out = eng.run(1000);
        assert!(out.is_completed());
        assert!(eng.cost().erased_slots > 0);
        // Each erased slot costs the shard exactly one retry round.
        assert!(out.rounds() > (n as u64).div_ceil(u64::from(k)) + 1);
        for v in g.nodes() {
            let expected: u64 = (0..n)
                .filter(|u| u % (k as usize) == v.index() % (k as usize))
                .map(|u| values[u])
                .sum();
            assert_eq!(eng.node(v).sum(), expected, "node {v:?}");
        }
    }

    #[test]
    fn channel_sharded_sum_skips_crashed_rank() {
        // Single shard of 9; node 4 crashes before its turn and recovers
        // late.  The survivors strike out its idle slot, skip the rank, and
        // finish with the sum of every value the channel actually carried;
        // the recovered node rejoins crashed-out and still terminates.
        let n = 9;
        let g = generators::ring(n);
        let values: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
        let mut eng = SyncEngine::with_channels(&g, ChannelShardedSum::channel_set(n, 1), |v| {
            ChannelShardedSum::new(v, n, 1, values[v.index()])
        });
        eng.set_fault_plan(FaultPlan::none().with_events(vec![
            FaultEvent::Crash {
                round: 2,
                node: NodeId(4),
            },
            FaultEvent::Recover {
                round: 8,
                node: NodeId(4),
            },
        ]));
        let out = eng.run(1000);
        assert!(out.is_completed());
        let heard: u64 = values.iter().sum::<u64>() - values[4];
        for v in g.nodes().filter(|v| v.index() != 4) {
            assert_eq!(eng.node(v).sum(), heard, "node {v:?}");
        }
        // The skipped rank costs TIMEOUT idle rounds on top of the
        // fault-free schedule; the recovered node's late catch-up (strike
        // out every rank it missed) dominates the tail.
        assert!(eng.node(NodeId(4)).is_done());
        assert!(eng.cost().slots_success == (n as u64) - 1);
    }

    #[test]
    fn tree_broadcast_reaches_everyone() {
        let g = generators::path(7);
        let n = g.node_count();
        let mut eng = SyncEngine::new(&g, |id| {
            let children = if id.index() + 1 < n {
                vec![NodeId(id.index() + 1)]
            } else {
                vec![]
            };
            let value = if id.index() == 0 { Some(1234u64) } else { None };
            TreeBroadcast::new(children, value)
        });
        let out = eng.run(100);
        assert!(out.is_completed());
        for v in g.nodes() {
            assert_eq!(eng.node(v).value(), Some(&1234));
        }
        assert_eq!(eng.cost().p2p_messages, (n - 1) as u64);
    }
}
