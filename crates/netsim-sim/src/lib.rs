//! # netsim-sim
//!
//! The **multimedia network simulator**: the execution substrate for the
//! reproduction of *"The Power of Multimedia: Combining Point-to-Point and
//! Multiaccess Networks"* (Afek, Landau, Schieber, Yung).
//!
//! A multimedia network (Section 2 of the paper) connects the same set of
//! processors by two media at once:
//!
//! 1. an arbitrary-topology **point-to-point** message-passing network, and
//! 2. a slotted **multiaccess channel** with ternary feedback
//!    (idle / success / collision).
//!
//! This crate provides:
//!
//! * [`SyncEngine`] — a deterministic synchronous round engine: per round,
//!   every node takes one [`Protocol::step`], point-to-point messages sent in
//!   a round are delivered at the next round, and one channel slot is
//!   resolved per round;
//! * [`AsyncEngine`] — an event-driven engine with adversarial (seeded)
//!   link delays, used to validate the channel-synchronizer claim of
//!   Section 7.1;
//! * [`protocols`] — reusable building blocks (BFS tree construction,
//!   convergecast / "broadcast and respond", tree broadcast);
//! * [`CostAccount`] — the paper's cost measures (rounds, point-to-point
//!   messages, channel-slot statistics).
//!
//! # Example
//!
//! ```
//! use netsim_graph::{generators, NodeId};
//! use netsim_sim::{protocols::BfsBuild, SyncEngine};
//!
//! let g = generators::ring(8);
//! let mut engine = SyncEngine::new(&g, |id| BfsBuild::new(id, NodeId(0)));
//! let outcome = engine.run(100);
//! assert!(outcome.is_completed());
//! assert_eq!(engine.node(NodeId(4)).depth(), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_engine;
mod channel;
mod engine;
mod metrics;
mod node;
pub mod protocols;

pub use async_engine::{AsyncConfig, AsyncCtx, AsyncEngine, AsyncProtocol};
pub use channel::{fdma_slot_lengths, resolve_slot, SlotOutcome, SlotState};
pub use engine::{RunOutcome, SyncEngine};
pub use metrics::CostAccount;
pub use node::{Protocol, RoundIo};
