//! # netsim-sim
//!
//! The **multimedia network simulator**: the execution substrate for the
//! reproduction of *"The Power of Multimedia: Combining Point-to-Point and
//! Multiaccess Networks"* (Afek, Landau, Schieber, Yung).
//!
//! A multimedia network (Section 2 of the paper) connects the same set of
//! processors by two media at once:
//!
//! 1. an arbitrary-topology **point-to-point** message-passing network, and
//! 2. a slotted **multiaccess channel** with ternary feedback
//!    (idle / success / collision).
//!
//! This crate provides:
//!
//! * [`SyncEngine`] — a deterministic synchronous round engine: per round,
//!   every node takes one [`Protocol::step`], point-to-point messages sent in
//!   a round are delivered at the next round, and one channel slot is
//!   resolved per round;
//! * [`AsyncEngine`] — an event-driven engine with adversarial (seeded)
//!   link delays, used to validate the channel-synchronizer claim of
//!   Section 7.1;
//! * [`protocols`] — reusable building blocks (BFS tree construction,
//!   convergecast / "broadcast and respond", tree broadcast);
//! * [`CostAccount`] — the paper's cost measures (rounds, point-to-point
//!   messages, channel-slot statistics);
//! * [`ReferenceEngine`] (module `reference`) — the straightforward
//!   pre-optimisation engine, kept for equivalence testing and as the
//!   benchmark baseline.
//!
//! # Performance architecture
//!
//! Both engines are **zero-allocation in steady state** (verified by the
//! `alloc_steady_state` integration test with a counting global allocator):
//!
//! * `SyncEngine` double-buffers messages through a flat CSR-style inbox
//!   arena plus a pooled staging buffer, bucketed per receiver with an
//!   O(n + k) stable counting pass — no per-round `Vec`s (see the
//!   [`engine`](SyncEngine) module docs for the layout);
//! * `AsyncEngine` keeps in-flight payloads in a slab with a free list and
//!   pools its callback buffers;
//! * quiescence checks are O(1) in both engines (incremental done-node
//!   counter + in-flight counters) instead of O(n) rescans per round/tick.
//!
//! **Determinism contract:** each node's inbox is ordered by the sender's
//! node index (then send order); with the opt-in `parallel` feature,
//! intra-round stepping fans out over scoped threads with per-thread shards
//! merged in node-index order, so runs stay bit-for-bit reproducible.
//! `Protocol::is_done` must only change during `step` — which is the only
//! mutable access the engines expose.
//!
//! Measured on the `BENCH_engine.json` global-sum gossip workload (single
//! core), the flat engine is **1.4–4.8× faster** than the (itself
//! pooled-pending) reference engine across the topology matrix; on the
//! 100k-node random graph — the ROADMAP's named cache-miss target — the
//! radix scatter raised the flat engine's absolute throughput ~2.4× over
//! the PR 1 recording, with ~25 allocations per *run* against the
//! reference's ~10⁷ (thousands per round).
//!
//! # Example
//!
//! ```
//! use netsim_graph::{generators, NodeId};
//! use netsim_sim::{protocols::BfsBuild, SyncEngine};
//!
//! let g = generators::ring(8);
//! let mut engine = SyncEngine::new(&g, |id| BfsBuild::new(id, NodeId(0)));
//! let outcome = engine.run(100);
//! assert!(outcome.is_completed());
//! assert_eq!(engine.node(NodeId(4)).depth(), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_engine;
mod channel;
mod engine;
mod metrics;
mod node;
pub mod protocols;
pub mod reference;

pub use async_engine::{AsyncConfig, AsyncCtx, AsyncEngine, AsyncProtocol};
pub use channel::{fdma_slot_lengths, resolve_slot, SlotOutcome, SlotState};
pub use engine::{RunOutcome, SyncEngine};
pub use metrics::CostAccount;
pub use node::{OutboxBuffer, Protocol, RoundIo};
pub use reference::ReferenceEngine;
