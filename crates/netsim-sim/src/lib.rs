//! # netsim-sim
//!
//! The **multimedia network simulator**: the execution substrate for the
//! reproduction of *"The Power of Multimedia: Combining Point-to-Point and
//! Multiaccess Networks"* (Afek, Landau, Schieber, Yung).
//!
//! A multimedia network (Section 2 of the paper) connects the same set of
//! processors by two media at once:
//!
//! 1. an arbitrary-topology **point-to-point** message-passing network, and
//! 2. a slotted **multiaccess channel** with ternary feedback
//!    (idle / success / collision).
//!
//! The simulator generalises the second medium to a [`ChannelSet`]: `K`
//! independent slotted collision channels with per-node attachment, one slot
//! each per round.  The paper's model is the `K = 1` default
//! ([`ChannelSet::single`]), and the single-channel API
//! ([`RoundIo::write_channel`] / [`RoundIo::prev_slot`]) is sugar for
//! [`ChannelId::DEFAULT`], so existing protocols compile and run unchanged.
//!
//! This crate provides:
//!
//! * [`SyncEngine`] — a deterministic synchronous round engine: per round,
//!   every node takes one [`Protocol::step`], point-to-point messages sent in
//!   a round are delivered at the next round, and one channel slot is
//!   resolved per round;
//! * [`AsyncEngine`] — an event-driven engine with adversarial (seeded)
//!   link delays, used to validate the channel-synchronizer claim of
//!   Section 7.1;
//! * [`protocols`] — reusable building blocks (BFS tree construction,
//!   convergecast / "broadcast and respond", tree broadcast);
//! * [`CostAccount`] — the paper's cost measures (rounds, point-to-point
//!   messages, channel-slot statistics);
//! * [`ReferenceEngine`] (module `reference`) — the straightforward
//!   pre-optimisation engine, kept for equivalence testing and as the
//!   benchmark baseline.
//!
//! # Performance architecture
//!
//! Both engines are **zero-allocation in steady state** (verified by the
//! `alloc_steady_state` integration test with a counting global allocator),
//! for `Copy` *and* for heap-carrying payloads:
//!
//! * message payloads are **arena-backed**: a send interns its payload once
//!   into a [`PayloadArena`] (sync: epoch slab swapped every round) or a
//!   refcounted slab (async), and everything downstream — staging,
//!   bucketing, delivery — moves 4-byte handles.  A broadcast over `d`
//!   links stores one payload, not `d` clones; retired heap payloads are
//!   recycled back to senders ([`RoundIo::recycle_payload`] /
//!   [`AsyncCtx::recycle_payload`]), so `Vec<u8>`-frame protocols run
//!   allocation-free too (see the [`payload`] module docs).  The **channel**
//!   rides the same plumbing: a write is interned into the staging arena and
//!   the flat engines resolve slots to *handle-based* outcomes
//!   ([`RoundIo::prev_slot_on`] borrows the winner straight from the
//!   delivery arena), so slot resolution never clones a message either;
//! * `SyncEngine` double-buffers messages through a flat CSR-style inbox
//!   arena plus a pooled staging buffer, bucketed per receiver with an
//!   O(n + k) stable counting pass — no per-round `Vec`s (see the
//!   [`engine`](SyncEngine) module docs for the layout);
//! * `AsyncEngine` keeps in-flight payloads in the refcounted slab with a
//!   free list and pools its callback buffers;
//! * quiescence checks are O(1) in both engines (incremental done-node
//!   counter + in-flight counters) instead of O(n) rescans per round/tick;
//! * **active-set stepping** (opt-in: [`SyncEngine::enable_sparse_stepping`],
//!   [`AsyncEngine::enable_sparse_boundaries`],
//!   [`ReferenceEngine::enable_sparse_stepping`]) makes per-round cost
//!   proportional to the *active* node set, not `n`: the engine maintains a
//!   frontier — nodes with a non-empty inbox, a non-idle outcome on an
//!   attached channel, a lifecycle transition, or an explicit
//!   [`RoundIo::wake_me`] / [`AsyncCtx::wake_me`] self-wakeup — and steps
//!   only its members, with epoch-versioned inbox ranges so idle nodes are
//!   never touched, cloned, or iterated.  Sparse runs are bit-identical to
//!   dense runs for *frontier-safe* protocols (see the [`RoundIo::wake_me`]
//!   contract); a run on a million-node graph with a thousand active nodes
//!   pays for a thousand steps per round.
//!
//! Delivery semantics across all three engines (flat sync, async, reference)
//! are pinned by the `engine_conformance` integration suite: identical
//! delivery traces and final states over the full topology matrix, whether
//! payloads travel as arena handles or as reference-engine clones.
//!
//! **Determinism contract:** each node's inbox is ordered by the sender's
//! node index (then send order); with the opt-in `parallel` feature,
//! intra-round stepping fans out over scoped threads with per-thread shards
//! merged in node-index order, so runs stay bit-for-bit reproducible.
//! `Protocol::is_done` must only change during `step` — which is the only
//! mutable access the engines expose.
//!
//! Measured on the `BENCH_engine.json` global-sum gossip workload (single
//! core), the flat engine is **1.6–5.7× faster** than the (itself
//! pooled-pending) reference engine across the topology matrix with ~60
//! allocations per *run* against the reference's ~10⁷; on the `Vec<u8>`
//! frame-gossip payload workload the arena path is **4–29× faster** than
//! the clone path (`payloads` section of `BENCH_engine.json`), because a
//! broadcast interns one frame instead of cloning per neighbour and
//! recycles it the round after.
//!
//! # Example
//!
//! ```
//! use netsim_graph::{generators, NodeId};
//! use netsim_sim::{protocols::BfsBuild, SyncEngine};
//!
//! let g = generators::ring(8);
//! let mut engine = SyncEngine::new(&g, |id| BfsBuild::new(id, NodeId(0)));
//! let outcome = engine.run(100);
//! assert!(outcome.is_completed());
//! assert_eq!(engine.node(NodeId(4)).depth(), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_engine;
mod channel;
pub mod control;
mod engine;
pub mod fault;
pub mod lockstep;
mod metrics;
mod node;
pub mod payload;
pub mod protocols;
pub mod reference;
pub mod reshard;
pub mod wire;

pub use async_engine::{AsyncConfig, AsyncCtx, AsyncEngine, AsyncProtocol};
pub use channel::{
    fdma_slot_lengths, resolve_lanes, resolve_slot, resolve_slots, ChannelId, ChannelSet,
    LaneOutcome, SlotOutcome, SlotState, MAX_CHANNELS,
};
pub use control::{EngineBuilder, EngineControl};
pub use engine::{tuned_block_shift, RunOutcome, SyncEngine};
pub use fault::{FaultEvent, FaultPlan, FaultSession, NodeLifecycle};
pub use lockstep::{
    lockstep_config, reconciled_channel_costs, reconciled_cost, reconciled_cost_faulted, Lockstep,
};
pub use metrics::CostAccount;
pub use node::{DrainSends, Inbox, InboxIter, OutboxBuffer, Protocol, RoundIo};
pub use payload::{PayloadArena, PayloadHandle};
pub use reference::ReferenceEngine;
pub use wire::{Frame, WireError, WireMsg};
