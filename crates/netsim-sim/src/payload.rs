//! Arena-backed payload storage for non-`Copy` messages.
//!
//! The flat engines never move (or clone) a message payload per delivery:
//! a payload is **interned once** into a [`PayloadArena`] when it is sent —
//! a broadcast over `d` links interns one payload and fans out `d` copies of
//! a 4-byte [`PayloadHandle`] — and every delivery resolves the handle back
//! to a shared `&M`.
//!
//! # Epoch discipline
//!
//! The arena is a bump slab with **whole-epoch expiry**, matching the round
//! engines' double-buffered message plumbing:
//!
//! * **Handle lifetime is one round.**  Payloads interned while round `r`
//!   executes are delivered (read-only) during round `r + 1` and the whole
//!   epoch dies at the end of that round — there is no per-handle free list
//!   and no reference counting, because nothing outlives its epoch.  The
//!   engines keep two arenas and swap their roles each round (stage into
//!   one, deliver from the other), exactly like the inbox buffers.
//! * **Intern-on-broadcast.**  [`RoundIo::send_all`](crate::RoundIo::send_all)
//!   interns the payload once; every receiver's inbox entry stores the same
//!   handle.  Expiry retires the payload once, so sharing needs no
//!   bookkeeping.
//! * **Slot reuse.**  [`PayloadArena::expire`] resets the bump cursor and
//!   keeps the slot vector's capacity, so the handles issued in round
//!   `r + 1` are the same indices that round `r` used: once the slab has
//!   grown to the workload's per-round high-water mark it never allocates
//!   again (enforced by the `alloc_steady_state` integration test).
//!
//! # Recycling heap payloads
//!
//! For `Copy`-ish payloads expiry is a cursor reset.  For payloads that own
//! heap storage (`Vec<u8>` frames, boxed records) expiry moves the dead
//! values into a bounded *graveyard* instead of dropping them; a protocol
//! obtains a dead payload — backing capacity intact — through
//! [`RoundIo::recycle_payload`](crate::RoundIo::recycle_payload) (or
//! [`AsyncCtx::recycle_payload`](crate::AsyncCtx::recycle_payload)),
//! overwrites it in place, and sends it again.  That closes the loop: a
//! protocol shipping variable-length frames runs **zero-allocation in steady
//! state** even though its message type is not `Copy`.  Protocols that never
//! recycle still work — the graveyard is capped at one epoch's worth of
//! payloads and the overflow is simply dropped.

/// Index of an interned payload in a [`PayloadArena`] epoch.
///
/// Handles are cheap (`u32`), `Copy`, and valid only for the epoch that
/// issued them: the engines resolve them against the delivery-side arena of
/// the matching round and never let one escape its round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PayloadHandle(pub(crate) u32);

impl PayloadHandle {
    /// Placeholder handle used to fill pooled scratch buffers before they
    /// are overwritten; never resolved.
    pub(crate) const DANGLING: PayloadHandle = PayloadHandle(u32::MAX);

    /// The slot index this handle refers to.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Epoch-based slab of message payloads; see the [module docs](self).
#[derive(Debug)]
pub struct PayloadArena<M> {
    /// Payload slots; `slots[i]` holds `Some` for every `i < live`.  Slots
    /// beyond `live` may hold stale values from expired epochs when `M`
    /// needs no drop (they are overwritten on reuse, never read).
    slots: Vec<Option<M>>,
    /// Bump cursor: number of payloads interned in the current epoch.
    live: usize,
    /// Dead heap payloads kept for capacity reuse via [`PayloadArena::recycle`];
    /// always empty when `M` needs no drop.
    graveyard: Vec<M>,
    /// Largest epoch size ever reached.
    high_water: usize,
}

impl<M> PayloadArena<M> {
    /// An empty arena.
    pub fn new() -> Self {
        PayloadArena {
            slots: Vec::new(),
            live: 0,
            graveyard: Vec::new(),
            high_water: 0,
        }
    }

    /// Stores `payload` in the current epoch and returns its handle.
    ///
    /// Reuses an expired slot when one is available; the backing slot vector
    /// only grows while the epoch exceeds every previous epoch's size.
    pub fn intern(&mut self, payload: M) -> PayloadHandle {
        let h = self.live;
        assert!(h < u32::MAX as usize, "payload arena epoch overflow");
        if h == self.slots.len() {
            self.slots.push(Some(payload));
        } else {
            self.slots[h] = Some(payload);
        }
        self.live = h + 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        PayloadHandle(h as u32)
    }

    /// Resolves a handle issued by this epoch.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to an expired epoch (index at or above
    /// the current bump cursor).
    pub fn get(&self, handle: PayloadHandle) -> &M {
        let i = handle.0 as usize;
        assert!(i < self.live, "stale payload handle: epoch has expired");
        self.slots[i].as_ref().expect("live slot holds a payload")
    }

    /// Number of payloads interned in the current epoch.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Returns `true` when the current epoch holds no payloads.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total payload slots ever grown (the slab's capacity high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Largest epoch size ever reached; equals [`PayloadArena::capacity`]
    /// once the arena has warmed up, because slots are reissued in place.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Dead payloads currently available to [`PayloadArena::recycle`].
    pub fn recyclable(&self) -> usize {
        self.graveyard.len()
    }

    /// Moves the payload out of its slot (the slot stays reserved until the
    /// epoch expires).  Used by the draining accessors for a handle's final
    /// use; a later [`PayloadArena::get`] on the same handle panics.
    pub(crate) fn take(&mut self, handle: PayloadHandle) -> M {
        let i = handle.0 as usize;
        assert!(i < self.live, "stale payload handle: epoch has expired");
        self.slots[i].take().expect("payload already taken")
    }

    /// Ends the current epoch: every handle issued since the last expiry
    /// becomes invalid and every slot is available for reissue.
    ///
    /// Payload values that own heap storage are parked in the graveyard
    /// (capped at one epoch's worth; overflow is dropped) so
    /// [`PayloadArena::recycle`] can hand their capacity back to senders;
    /// for types without drop glue this is a cursor reset.  Slots emptied
    /// early (payloads moved out by the crate-internal `take`, used by the
    /// draining accessors for a handle's last use) are skipped.
    pub fn expire(&mut self) {
        if std::mem::needs_drop::<M>() {
            let cap = self.slots.len();
            for slot in &mut self.slots[..self.live] {
                if let Some(payload) = slot.take() {
                    if self.graveyard.len() < cap {
                        self.graveyard.push(payload);
                    }
                }
            }
        }
        self.live = 0;
    }

    /// Takes one dead payload (heap capacity intact) for reuse, if any.
    ///
    /// Returns `None` for types without drop glue — there is nothing worth
    /// reusing — and whenever the graveyard is empty (e.g. during the first
    /// rounds, before any epoch has expired).
    pub fn recycle(&mut self) -> Option<M> {
        self.graveyard.pop()
    }

    /// Parks a dead payload in the graveyard directly (capacity-capped like
    /// [`PayloadArena::expire`]); used by the engines to hand expired
    /// payloads back to the arenas senders actually intern into.
    pub(crate) fn donate(&mut self, payload: M) {
        if std::mem::needs_drop::<M>() && self.graveyard.len() < self.slots.len().max(1) {
            self.graveyard.push(payload);
        }
    }

    /// Moves every live payload of this epoch into `dst` (preserving order)
    /// and ends the epoch here.  Returns the handle offset: a handle `h`
    /// issued by this arena now resolves in `dst` as `h + offset`.
    ///
    /// Used by the parallel engine path to merge per-worker staging arenas
    /// into the delivery arena in worker order.
    pub(crate) fn drain_live_into(&mut self, dst: &mut PayloadArena<M>) -> u32 {
        let offset = dst.live as u32;
        for slot in &mut self.slots[..self.live] {
            let payload = slot.take().expect("live slot holds a payload");
            dst.intern(payload);
        }
        self.live = 0;
        offset
    }
}

impl<M> Default for PayloadArena<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_roundtrip() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        let h1 = a.intern(vec![1, 2, 3]);
        let h2 = a.intern(vec![4]);
        assert_eq!(a.get(h1), &[1, 2, 3]);
        assert_eq!(a.get(h2), &[4]);
        assert_eq!(a.live(), 2);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn handles_are_reissued_after_expiry() {
        // The arena-reuse contract: handles freed by the expiry of epoch r
        // are reissued — same indices, same slots — in epoch r + 1, and the
        // slab never grows past the largest epoch.
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        let first: Vec<PayloadHandle> = (0..8).map(|i| a.intern(vec![i as u8; 4])).collect();
        a.expire();
        let second: Vec<PayloadHandle> = (0..8).map(|i| a.intern(vec![i as u8; 4])).collect();
        assert_eq!(first, second, "expired handles must be reissued in order");
        assert_eq!(a.capacity(), 8);
        assert_eq!(a.high_water(), 8);
    }

    #[test]
    #[should_panic(expected = "stale payload handle")]
    fn stale_handle_panics() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        let h = a.intern(7);
        a.expire();
        let _ = a.get(h);
    }

    #[test]
    fn recycle_returns_heap_payloads_with_capacity() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        let mut frame = Vec::with_capacity(4096);
        frame.extend_from_slice(&[9; 100]);
        a.intern(frame);
        assert_eq!(a.recycle(), None, "live payloads are not recyclable");
        a.expire();
        let back = a.recycle().expect("expired payload is recyclable");
        assert_eq!(back.capacity(), 4096, "backing storage must survive");
        assert_eq!(back, vec![9; 100]);
        assert_eq!(a.recycle(), None);
    }

    #[test]
    fn copy_payloads_skip_the_graveyard() {
        let mut a: PayloadArena<u64> = PayloadArena::new();
        for i in 0..16 {
            a.intern(i);
        }
        a.expire();
        assert_eq!(a.recyclable(), 0);
        assert_eq!(a.recycle(), None);
    }

    #[test]
    fn graveyard_is_bounded_by_one_epoch() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        for _ in 0..10 {
            for i in 0..4 {
                a.intern(vec![i as u8]);
            }
            a.expire();
        }
        // Ten expired epochs of four payloads each, but the graveyard never
        // exceeds the slab capacity (one epoch's worth).
        assert!(a.recyclable() <= a.capacity());
        assert_eq!(a.capacity(), 4);
    }

    #[test]
    fn drain_live_into_preserves_order_and_offsets() {
        let mut src: PayloadArena<Vec<u8>> = PayloadArena::new();
        let mut dst: PayloadArena<Vec<u8>> = PayloadArena::new();
        dst.intern(vec![0]);
        let h = src.intern(vec![1]);
        src.intern(vec![2]);
        let offset = src.drain_live_into(&mut dst);
        assert_eq!(offset, 1);
        assert_eq!(src.live(), 0);
        assert_eq!(dst.live(), 3);
        assert_eq!(dst.get(PayloadHandle(h.0 + offset)), &[1]);
    }
}
