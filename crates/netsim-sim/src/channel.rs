//! The multiaccess (collision) channel.
//!
//! Every node of the network can write to, and read from, each slot of the
//! channel.  A slot is **idle** when no node writes, a **success** when
//! exactly one node writes (its message is then heard by every node), and a
//! **collision** when two or more nodes write; collisions are detected by all
//! nodes but the colliding messages are lost.  This is exactly the model of
//! Section 2 of the paper.

use netsim_graph::NodeId;

/// Outcome of one channel slot, as observed by **every** node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotOutcome<M> {
    /// Nobody wrote in this slot.
    Idle,
    /// Exactly one node wrote; all nodes hear the message.
    Success {
        /// The node whose write succeeded.
        from: NodeId,
        /// The broadcast message.
        msg: M,
    },
    /// Two or more nodes wrote; everyone detects the collision but no
    /// message content is delivered.
    Collision,
}

impl<M> SlotOutcome<M> {
    /// Returns `true` for [`SlotOutcome::Idle`].
    pub fn is_idle(&self) -> bool {
        matches!(self, SlotOutcome::Idle)
    }

    /// Returns `true` for [`SlotOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, SlotOutcome::Success { .. })
    }

    /// Returns `true` for [`SlotOutcome::Collision`].
    pub fn is_collision(&self) -> bool {
        matches!(self, SlotOutcome::Collision)
    }

    /// The delivered message, when the slot was a success.
    pub fn message(&self) -> Option<&M> {
        match self {
            SlotOutcome::Success { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// The successful writer, when the slot was a success.
    pub fn sender(&self) -> Option<NodeId> {
        match self {
            SlotOutcome::Success { from, .. } => Some(*from),
            _ => None,
        }
    }
}

/// Resolves a slot from the list of `(writer, message)` attempts.
///
/// When several nodes write, the outcome is a collision and the message
/// contents are discarded, matching the model (no capture effect).
pub fn resolve_slot<M: Clone>(writes: &[(NodeId, M)]) -> SlotOutcome<M> {
    match writes {
        [] => SlotOutcome::Idle,
        [(from, msg)] => SlotOutcome::Success {
            from: *from,
            msg: msg.clone(),
        },
        _ => SlotOutcome::Collision,
    }
}

/// Ternary channel feedback without message content, used where only the
/// slot state (idle / success / collision) matters — e.g. the busy-tone
/// synchronizer of Section 7.1 and the slotting construction of Section 7.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotState {
    /// Zero writers.
    Idle,
    /// One writer.
    Success,
    /// Two or more writers.
    Collision,
}

impl<M> From<&SlotOutcome<M>> for SlotState {
    fn from(o: &SlotOutcome<M>) -> Self {
        match o {
            SlotOutcome::Idle => SlotState::Idle,
            SlotOutcome::Success { .. } => SlotState::Success,
            SlotOutcome::Collision => SlotState::Collision,
        }
    }
}

/// Converts an **unslotted** channel into a slotted one using a second
/// (FDMA) carrier, following Section 7.2 of the paper: every node that is
/// still active in the current slot transmits a busy tone on the extra
/// carrier; the first idle period on that carrier marks the slot boundary.
///
/// The simulation works in fine-grained *ticks*.  Each active node keeps its
/// busy tone up for the (integer) number of ticks its transmission needs;
/// the slot ends at the first tick in which no busy tone is heard.  The
/// function returns the number of ticks each of the `durations.len()` slots
/// lasted, demonstrating that the construction yields well-defined slot
/// boundaries whose length adapts to the slowest writer.
///
/// `durations[s]` holds the per-node transmission lengths (in ticks) of the
/// nodes active in slot `s`; an empty list yields the minimum slot length of
/// one tick (the idle period itself).
pub fn fdma_slot_lengths(durations: &[Vec<u32>]) -> Vec<u32> {
    durations
        .iter()
        .map(|active| active.iter().copied().max().unwrap_or(0) + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_idle_success_collision() {
        let empty: Vec<(NodeId, u32)> = vec![];
        assert!(resolve_slot(&empty).is_idle());

        let one = vec![(NodeId(3), 42u32)];
        let out = resolve_slot(&one);
        assert!(out.is_success());
        assert_eq!(out.sender(), Some(NodeId(3)));
        assert_eq!(out.message(), Some(&42));

        let two = vec![(NodeId(1), 1u32), (NodeId(2), 2u32)];
        let out = resolve_slot(&two);
        assert!(out.is_collision());
        assert_eq!(out.message(), None);
        assert_eq!(out.sender(), None);
    }

    #[test]
    fn slot_state_from_outcome() {
        let o: SlotOutcome<u8> = SlotOutcome::Idle;
        assert_eq!(SlotState::from(&o), SlotState::Idle);
        let o = SlotOutcome::Success {
            from: NodeId(0),
            msg: 7u8,
        };
        assert_eq!(SlotState::from(&o), SlotState::Success);
        let o: SlotOutcome<u8> = SlotOutcome::Collision;
        assert_eq!(SlotState::from(&o), SlotState::Collision);
    }

    #[test]
    fn fdma_slots_adapt_to_slowest_writer() {
        let lens = fdma_slot_lengths(&[vec![3, 1, 2], vec![], vec![5]]);
        assert_eq!(lens, vec![4, 1, 6]);
    }
}
