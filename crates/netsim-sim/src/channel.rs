//! The multiaccess (collision) channel substrate.
//!
//! Every node of the network can write to, and read from, each slot of a
//! channel it is attached to.  A slot is **idle** when no attached node
//! writes, a **success** when exactly one node writes (its message is then
//! heard by every attached node), and a **collision** when two or more nodes
//! write; collisions are detected by all attached nodes but the colliding
//! messages are lost.  With a single channel to which every node is attached
//! this is exactly the model of Section 2 of the paper.
//!
//! # Multiple channels
//!
//! Real multi-access deployments multiplex several channels (traffic-class
//! FDMA carriers, per-group multicast channels).  A [`ChannelSet`] describes
//! `K` independent slotted collision channels plus a per-node *attachment*:
//! each round, every channel resolves its own slot among the writes of its
//! attached nodes, and only attached nodes hear the outcome (an unattached
//! node observes [`SlotOutcome::Idle`]).  [`ChannelId(0)`](ChannelId) is the
//! *default* channel: the single-channel API
//! ([`RoundIo::write_channel`](crate::RoundIo::write_channel) /
//! [`RoundIo::prev_slot`](crate::RoundIo::prev_slot)) is sugar for it, so
//! protocols written against the paper's one-channel model run unchanged on
//! any `ChannelSet` whose channel 0 they are attached to.

use crate::payload::PayloadHandle;
use netsim_graph::NodeId;

/// Identifier of one channel of a [`ChannelSet`].
///
/// Channel 0 ([`ChannelId::DEFAULT`]) is the paper's single multiaccess
/// channel; higher ids address the additional carriers of a multi-channel
/// deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// The default channel, used by the single-channel convenience API.
    pub const DEFAULT: ChannelId = ChannelId(0);

    /// The channel's index within its [`ChannelSet`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maximum number of channels in a [`ChannelSet`] (attachment is stored as a
/// per-node `u64` bitmask).
pub const MAX_CHANNELS: u16 = 64;

/// A set of `K` slotted collision channels with per-node attachment.
///
/// The engines resolve one slot per channel per round.  Attachment governs
/// both directions: a node may only write to channels it is attached to
/// (writing elsewhere panics, like sending to a non-neighbour), and it
/// observes [`SlotOutcome::Idle`] on channels it is not attached to.
///
/// `K` is capped at [`MAX_CHANNELS`] (64) so an attachment fits in one
/// machine word per node — the engines test a single bit on the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelSet {
    /// Number of channels.
    k: u16,
    /// Per-node attachment bitmasks (`masks[v] & (1 << c)` set iff node `v`
    /// is attached to channel `c`); `None` means every node is attached to
    /// every channel.
    masks: Option<Vec<u64>>,
}

impl ChannelSet {
    /// The paper's model: one channel, every node attached.
    pub fn single() -> Self {
        ChannelSet::uniform(1)
    }

    /// `k` channels, every node attached to all of them.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= MAX_CHANNELS`.
    pub fn uniform(k: u16) -> Self {
        assert!(
            (1..=MAX_CHANNELS).contains(&k),
            "channel count {k} outside 1..={MAX_CHANNELS}"
        );
        ChannelSet { k, masks: None }
    }

    /// `k` channels with explicit per-node attachment bitmasks (one `u64`
    /// per node, bit `c` = attached to channel `c`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= MAX_CHANNELS`, or if a mask has a bit set at
    /// or above `k`.
    pub fn from_masks(k: u16, masks: Vec<u64>) -> Self {
        assert!(
            (1..=MAX_CHANNELS).contains(&k),
            "channel count {k} outside 1..={MAX_CHANNELS}"
        );
        let all = Self::full_mask(k);
        for (v, &m) in masks.iter().enumerate() {
            assert!(
                m & !all == 0,
                "node {v} attachment mask {m:#x} addresses channels >= {k}"
            );
        }
        ChannelSet {
            k,
            masks: Some(masks),
        }
    }

    /// `k` channels with each of `n` nodes attached to exactly the one
    /// channel `assign(v)` returns — the *sharded* layout used by the
    /// channel-sharded global-function scenarios.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= MAX_CHANNELS`, or if `assign` returns a
    /// channel `>= k`.
    pub fn sharded<F: FnMut(NodeId) -> ChannelId>(k: u16, n: usize, mut assign: F) -> Self {
        assert!(
            (1..=MAX_CHANNELS).contains(&k),
            "channel count {k} outside 1..={MAX_CHANNELS}"
        );
        let masks = (0..n)
            .map(|v| {
                let c = assign(NodeId(v));
                assert!(
                    c.0 < k,
                    "node {v} assigned to channel {} of a {k}-channel set",
                    c.0
                );
                1u64 << c.0
            })
            .collect();
        ChannelSet {
            k,
            masks: Some(masks),
        }
    }

    /// Number of channels `K`.
    pub fn channels(&self) -> u16 {
        self.k
    }

    /// Replaces the per-node attachment with a new snapshot, one bitmask per
    /// node (bit `c` = attached to channel `c`) — the **dynamic attachment**
    /// primitive behind phase-boundary re-attachment (e.g. the channel-
    /// sharded MST re-attaching a merged fragment to its winner's channel
    /// between merge phases).
    ///
    /// # Determinism contract
    ///
    /// The new attachment is a pure *snapshot*: the resulting set is exactly
    /// [`ChannelSet::from_masks`]`(k, masks)` regardless of the set's
    /// history, so any sequence of re-attachments collapses to the last one
    /// (pinned by the `channel_properties` proptests).  When an engine
    /// applies the snapshot **between rounds** (see
    /// [`SyncEngine::reattach`](crate::SyncEngine::reattach)), the next
    /// round's steps observe the *previous* round's slot outcomes gated by
    /// the **new** masks, and write gating uses the new masks too; writes
    /// already staged under the old attachment still resolve.  The snapshot
    /// never reallocates once a table exists (the masks are copied in
    /// place), so phase boundaries stay off the allocation hot path.
    ///
    /// # Panics
    ///
    /// Panics if a mask addresses a channel at or beyond `K`, or if the set
    /// already has an attachment table of a different node count.
    pub fn reattach(&mut self, masks: &[u64]) {
        let all = Self::full_mask(self.k);
        for (v, &m) in masks.iter().enumerate() {
            assert!(
                m & !all == 0,
                "node {v} attachment mask {m:#x} addresses channels >= {}",
                self.k
            );
        }
        match &mut self.masks {
            Some(table) => {
                assert_eq!(
                    table.len(),
                    masks.len(),
                    "re-attachment covers {} nodes, table has {}",
                    masks.len(),
                    table.len()
                );
                table.copy_from_slice(masks);
            }
            None => self.masks = Some(masks.to_vec()),
        }
    }

    /// Attachment bitmask of node `v` (bit `c` set iff attached to channel `c`).
    pub fn mask(&self, v: NodeId) -> u64 {
        match &self.masks {
            None => Self::full_mask(self.k),
            Some(masks) => masks[v.index()],
        }
    }

    /// Returns `true` when node `v` is attached to channel `chan`.
    pub fn is_attached(&self, v: NodeId, chan: ChannelId) -> bool {
        chan.0 < self.k && self.mask(v) & (1 << chan.0) != 0
    }

    /// Number of nodes the attachment table covers (`None` for uniform sets,
    /// which cover any node count).  Execution substrates (the engines, the
    /// `netsim-io` wire backend) validate this against their graph before a
    /// run starts.
    pub fn table_len(&self) -> Option<usize> {
        self.masks.as_ref().map(Vec::len)
    }

    /// The per-node attachment table, or `None` for uniform sets (every node
    /// attached to every channel). Sparse stepping uses this to wake exactly
    /// the nodes that will observe a non-idle slot outcome next round.
    pub(crate) fn masks_table(&self) -> Option<&[u64]> {
        self.masks.as_deref()
    }

    /// Attachment bitmask covering every channel of a `k`-channel set; the
    /// single source of the shift-overflow-sensitive expression (also used
    /// by the detached [`RoundIo`](crate::RoundIo) constructors).
    pub(crate) fn full_mask(k: u16) -> u64 {
        if k as u32 >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }
}

impl Default for ChannelSet {
    fn default() -> Self {
        ChannelSet::single()
    }
}

/// Handle-based slot outcome used inside the flat engines: the winning
/// message lives in the round's delivery [`PayloadArena`](crate::PayloadArena)
/// and the outcome carries only its handle, so resolving a slot never clones
/// the winner (see [`RoundIo::prev_slot_on`](crate::RoundIo::prev_slot_on)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ChannelOutcome {
    /// Nobody wrote.
    Idle,
    /// Exactly one node wrote; the payload is interned in the delivery arena.
    Success {
        /// The node whose write succeeded.
        from: NodeId,
        /// Handle of the winning payload in the round's delivery arena.
        handle: PayloadHandle,
    },
    /// Two or more nodes wrote.
    Collision,
    /// The slot carried at least one write but was erased by an injected
    /// channel fault (see [`FaultPlan`](crate::FaultPlan)); the winner's
    /// payload is discarded at the resolve boundary.
    Erased,
}

/// Outcome of one channel slot, as observed by **every** node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotOutcome<M> {
    /// Nobody wrote in this slot.
    Idle,
    /// Exactly one node wrote; all nodes hear the message.
    Success {
        /// The node whose write succeeded.
        from: NodeId,
        /// The broadcast message.
        msg: M,
    },
    /// Two or more nodes wrote; everyone detects the collision but no
    /// message content is delivered.
    Collision,
    /// The slot carried at least one write but an injected channel fault
    /// erased it: every attached node hears the distinguished erasure
    /// feedback (the slot was audibly busy) but no message content and no
    /// collision/success classification is delivered.
    ///
    /// Erasures are produced only by a [`FaultPlan`](crate::FaultPlan) and
    /// only for slots with at least one writer — an idle slot stays
    /// [`SlotOutcome::Idle`] even when scheduled for erasure, so a fault-free
    /// execution can never observe this variant.  The exact application
    /// point is pinned in the [`fault`](crate::fault) module docs.
    Erased,
}

impl<M> SlotOutcome<M> {
    /// Returns `true` for [`SlotOutcome::Idle`].
    pub fn is_idle(&self) -> bool {
        matches!(self, SlotOutcome::Idle)
    }

    /// Returns `true` for [`SlotOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, SlotOutcome::Success { .. })
    }

    /// Returns `true` for [`SlotOutcome::Collision`].
    pub fn is_collision(&self) -> bool {
        matches!(self, SlotOutcome::Collision)
    }

    /// Returns `true` for [`SlotOutcome::Erased`].
    pub fn is_erased(&self) -> bool {
        matches!(self, SlotOutcome::Erased)
    }

    /// The delivered message, when the slot was a success.
    pub fn message(&self) -> Option<&M> {
        match self {
            SlotOutcome::Success { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// The successful writer, when the slot was a success.
    pub fn sender(&self) -> Option<NodeId> {
        match self {
            SlotOutcome::Success { from, .. } => Some(*from),
            _ => None,
        }
    }
}

/// Outcome of one channel's **lane sub-slot**, as observed by every attached
/// node.
///
/// Lanes are the word-wide *bit-parallel* sibling of the message slot: each
/// round, every channel resolves — next to its ordinary [`SlotOutcome`] — one
/// lane word formed as the **bitwise OR** of every `u64` staged through
/// [`RoundIo::write_lanes_on`](crate::RoundIo::write_lanes_on) on that
/// channel.  Unlike the message slot there is no collision: concurrent
/// writers *merge*, which is exactly the busy/idle-per-bit feedback 64
/// concurrent bitwise elections need (each election occupies one bit lane;
/// a set bit means "some contender of this lane transmitted").
///
/// The lane sub-slot is independent of the message slot of the same channel
/// and round: a protocol may stage both a message write and a lane write,
/// and each resolves on its own.  Fault semantics mirror the message slot —
/// an injected erasure (same `(round, channel)` draw as
/// [`SlotOutcome::Erased`]) destroys a *busy* lane word in flight, and a
/// seeded corruption fault may flip one bit of a busy word (counted in
/// [`CostAccount::corrupted_payloads`](crate::CostAccount)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaneOutcome {
    /// Nobody staged a lane write on this channel this round.
    Idle,
    /// At least one node wrote; the word is the OR of every staged word
    /// (after any injected corruption bit-flip).
    Word(u64),
    /// The sub-slot carried at least one write but an injected channel fault
    /// erased it: attached nodes hear that the lanes were busy but learn no
    /// word.  Like [`SlotOutcome::Erased`], fault-free executions never
    /// observe this variant.
    Erased,
}

impl LaneOutcome {
    /// Returns `true` for [`LaneOutcome::Idle`].
    pub fn is_idle(&self) -> bool {
        matches!(self, LaneOutcome::Idle)
    }

    /// Returns `true` for [`LaneOutcome::Erased`].
    pub fn is_erased(&self) -> bool {
        matches!(self, LaneOutcome::Erased)
    }

    /// The resolved word, when the sub-slot was busy and not erased.
    pub fn word(&self) -> Option<u64> {
        match self {
            LaneOutcome::Word(w) => Some(*w),
            _ => None,
        }
    }
}

/// Resolves every channel's lane sub-slot from the flat list of
/// `(channel, writer, word)` attempts: the outcome of channel `c` is the OR
/// of every word staged on it ([`LaneOutcome::Idle`] with zero writers).
/// The clone-free sibling of [`resolve_slots`], shared by the reference
/// engine and the wire backend; the flat engines fold in place instead.
///
/// # Panics
///
/// Panics if a write addresses a channel at or beyond `k`.
pub fn resolve_lanes(k: u16, writes: &[(ChannelId, NodeId, u64)]) -> Vec<LaneOutcome> {
    let mut out: Vec<LaneOutcome> = (0..k).map(|_| LaneOutcome::Idle).collect();
    for (chan, from, word) in writes {
        assert!(
            chan.0 < k,
            "{from:?} wrote lanes on {chan:?} of a {k}-channel set"
        );
        let lane = &mut out[chan.index()];
        *lane = match *lane {
            LaneOutcome::Idle => LaneOutcome::Word(*word),
            LaneOutcome::Word(w) => LaneOutcome::Word(w | *word),
            LaneOutcome::Erased => unreachable!("erasure happens post-fold"),
        };
    }
    out
}

/// Resolves a slot from the list of `(writer, message)` attempts.
///
/// When several nodes write, the outcome is a collision and the message
/// contents are discarded, matching the model (no capture effect).
pub fn resolve_slot<M: Clone>(writes: &[(NodeId, M)]) -> SlotOutcome<M> {
    match writes {
        [] => SlotOutcome::Idle,
        [(from, msg)] => SlotOutcome::Success {
            from: *from,
            msg: msg.clone(),
        },
        _ => SlotOutcome::Collision,
    }
}

/// Resolves every channel of a `k`-channel set from the flat list of
/// `(channel, writer, message)` attempts, cloning each winning message into
/// its outcome — the **clone path** used by the
/// [`ReferenceEngine`](crate::ReferenceEngine) (the flat engines resolve to
/// arena handles instead).  Attempts on the same channel may appear anywhere
/// in the list; the outcome of every channel is independent of the order of
/// `writes` (property-tested in `tests/channel_properties.rs`).
///
/// # Panics
///
/// Panics if a write addresses a channel at or beyond `k`.
pub fn resolve_slots<M: Clone>(k: u16, writes: &[(ChannelId, NodeId, M)]) -> Vec<SlotOutcome<M>> {
    let mut out: Vec<SlotOutcome<M>> = (0..k).map(|_| SlotOutcome::Idle).collect();
    for (chan, from, msg) in writes {
        assert!(
            chan.0 < k,
            "{from:?} wrote to {chan:?} of a {k}-channel set"
        );
        let slot = &mut out[chan.index()];
        *slot = match slot {
            SlotOutcome::Idle => SlotOutcome::Success {
                from: *from,
                msg: msg.clone(),
            },
            _ => SlotOutcome::Collision,
        };
    }
    out
}

/// Ternary channel feedback without message content, used where only the
/// slot state (idle / success / collision) matters — e.g. the busy-tone
/// synchronizer of Section 7.1 and the slotting construction of Section 7.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotState {
    /// Zero writers.
    Idle,
    /// One writer.
    Success,
    /// Two or more writers.
    Collision,
    /// One or more writers, but the slot was erased by an injected fault.
    Erased,
}

impl<M> From<&SlotOutcome<M>> for SlotState {
    fn from(o: &SlotOutcome<M>) -> Self {
        match o {
            SlotOutcome::Idle => SlotState::Idle,
            SlotOutcome::Success { .. } => SlotState::Success,
            SlotOutcome::Collision => SlotState::Collision,
            SlotOutcome::Erased => SlotState::Erased,
        }
    }
}

impl<M> From<SlotOutcome<M>> for SlotState {
    fn from(o: SlotOutcome<M>) -> Self {
        SlotState::from(&o)
    }
}

/// Converts an **unslotted** channel into a slotted one using a second
/// (FDMA) carrier, following Section 7.2 of the paper: every node that is
/// still active in the current slot transmits a busy tone on the extra
/// carrier; the first idle period on that carrier marks the slot boundary.
///
/// The simulation works in fine-grained *ticks*.  Each active node keeps its
/// busy tone up for the (integer) number of ticks its transmission needs;
/// the slot ends at the first tick in which no busy tone is heard.  The
/// function returns the number of ticks each of the `durations.len()` slots
/// lasted, demonstrating that the construction yields well-defined slot
/// boundaries whose length adapts to the slowest writer.
///
/// `durations[s]` holds the per-node transmission lengths (in ticks) of the
/// nodes active in slot `s`; an empty list yields the minimum slot length of
/// one tick (the idle period itself).
pub fn fdma_slot_lengths(durations: &[Vec<u32>]) -> Vec<u32> {
    durations
        .iter()
        .map(|active| active.iter().copied().max().unwrap_or(0) + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_idle_success_collision() {
        let empty: Vec<(NodeId, u32)> = vec![];
        assert!(resolve_slot(&empty).is_idle());

        let one = vec![(NodeId(3), 42u32)];
        let out = resolve_slot(&one);
        assert!(out.is_success());
        assert_eq!(out.sender(), Some(NodeId(3)));
        assert_eq!(out.message(), Some(&42));

        let two = vec![(NodeId(1), 1u32), (NodeId(2), 2u32)];
        let out = resolve_slot(&two);
        assert!(out.is_collision());
        assert_eq!(out.message(), None);
        assert_eq!(out.sender(), None);
    }

    #[test]
    fn slot_state_from_outcome() {
        let o: SlotOutcome<u8> = SlotOutcome::Idle;
        assert_eq!(SlotState::from(&o), SlotState::Idle);
        let o = SlotOutcome::Success {
            from: NodeId(0),
            msg: 7u8,
        };
        assert_eq!(SlotState::from(&o), SlotState::Success);
        let o: SlotOutcome<u8> = SlotOutcome::Collision;
        assert_eq!(SlotState::from(&o), SlotState::Collision);
        let o: SlotOutcome<u8> = SlotOutcome::Erased;
        assert_eq!(SlotState::from(&o), SlotState::Erased);
        assert!(o.is_erased());
        assert!(!o.is_idle() && !o.is_success() && !o.is_collision());
        assert_eq!(o.message(), None);
        assert_eq!(o.sender(), None);
    }

    #[test]
    fn fdma_slots_adapt_to_slowest_writer() {
        let lens = fdma_slot_lengths(&[vec![3, 1, 2], vec![], vec![5]]);
        assert_eq!(lens, vec![4, 1, 6]);
    }

    #[test]
    fn resolve_slots_is_per_channel() {
        let writes = vec![
            (ChannelId(1), NodeId(0), 10u32),
            (ChannelId(0), NodeId(1), 20),
            (ChannelId(1), NodeId(2), 30),
            (ChannelId(3), NodeId(3), 40),
        ];
        let out = resolve_slots(4, &writes);
        assert!(out[0].is_success());
        assert_eq!(out[0].sender(), Some(NodeId(1)));
        assert!(out[1].is_collision());
        assert!(out[2].is_idle());
        assert_eq!(out[3].message(), Some(&40));
    }

    #[test]
    fn resolve_lanes_or_merges_per_channel() {
        let writes = vec![
            (ChannelId(1), NodeId(0), 0b0011u64),
            (ChannelId(1), NodeId(2), 0b0110),
            (ChannelId(3), NodeId(3), 1 << 63),
        ];
        let out = resolve_lanes(4, &writes);
        assert_eq!(out[0], LaneOutcome::Idle);
        assert!(out[0].is_idle());
        assert_eq!(out[1], LaneOutcome::Word(0b0111));
        assert_eq!(out[1].word(), Some(0b0111));
        assert_eq!(out[2].word(), None);
        assert_eq!(out[3], LaneOutcome::Word(1 << 63));
        assert!(LaneOutcome::Erased.is_erased());
        assert_eq!(LaneOutcome::Erased.word(), None);
    }

    #[test]
    #[should_panic(expected = "wrote lanes on")]
    fn resolve_lanes_rejects_out_of_range_channel() {
        let _ = resolve_lanes(2, &[(ChannelId(2), NodeId(0), 1)]);
    }

    #[test]
    fn channel_set_attachment() {
        let all = ChannelSet::uniform(3);
        assert_eq!(all.channels(), 3);
        assert!(all.is_attached(NodeId(7), ChannelId(2)));
        assert!(!all.is_attached(NodeId(7), ChannelId(3)));
        assert_eq!(all.mask(NodeId(7)), 0b111);
        assert_eq!(all.table_len(), None);

        let sharded = ChannelSet::sharded(4, 8, |v| ChannelId((v.index() % 4) as u16));
        assert!(sharded.is_attached(NodeId(6), ChannelId(2)));
        assert!(!sharded.is_attached(NodeId(6), ChannelId(0)));
        assert_eq!(sharded.table_len(), Some(8));

        let masks = ChannelSet::from_masks(2, vec![0b01, 0b11]);
        assert!(!masks.is_attached(NodeId(0), ChannelId(1)));
        assert!(masks.is_attached(NodeId(1), ChannelId(1)));
        assert_eq!(ChannelSet::default(), ChannelSet::single());
    }

    #[test]
    fn channel_set_full_width_mask() {
        let wide = ChannelSet::uniform(MAX_CHANNELS);
        assert_eq!(wide.mask(NodeId(0)), u64::MAX);
        assert!(wide.is_attached(NodeId(0), ChannelId(63)));
    }

    #[test]
    fn reattach_is_a_pure_snapshot() {
        // From a uniform set: reattaching materialises the table.
        let mut set = ChannelSet::uniform(3);
        set.reattach(&[0b001, 0b010, 0b100]);
        assert_eq!(set, ChannelSet::from_masks(3, vec![0b001, 0b010, 0b100]));
        // History collapses: only the last snapshot matters.
        set.reattach(&[0b111, 0b111, 0b001]);
        set.reattach(&[0b010, 0b001, 0b100]);
        assert_eq!(set, ChannelSet::from_masks(3, vec![0b010, 0b001, 0b100]));
        assert!(set.is_attached(NodeId(0), ChannelId(1)));
        assert!(!set.is_attached(NodeId(0), ChannelId(0)));
        assert_eq!(set.table_len(), Some(3));
    }

    #[test]
    #[should_panic(expected = "addresses channels")]
    fn reattach_mask_out_of_range_rejected() {
        let mut set = ChannelSet::uniform(2);
        set.reattach(&[0b01, 0b100]);
    }

    #[test]
    #[should_panic(expected = "re-attachment covers")]
    fn reattach_node_count_mismatch_rejected() {
        let mut set = ChannelSet::from_masks(2, vec![0b01, 0b10]);
        set.reattach(&[0b01]);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn zero_channels_rejected() {
        let _ = ChannelSet::uniform(0);
    }

    #[test]
    #[should_panic(expected = "assigned to channel")]
    fn sharded_out_of_range_rejected() {
        let _ = ChannelSet::sharded(2, 3, |_| ChannelId(2));
    }

    #[test]
    #[should_panic(expected = "addresses channels")]
    fn mask_out_of_range_rejected() {
        let _ = ChannelSet::from_masks(2, vec![0b100]);
    }
}
