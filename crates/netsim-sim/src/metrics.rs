//! Cost accounting for multimedia-network executions.
//!
//! The paper measures
//!
//! * **time** — the number of rounds (point-to-point message delay and the
//!   channel slot length are both one time unit), and
//! * **communication** — the total number of point-to-point messages sent
//!   plus the time (the latter accounts for the information received over the
//!   channel).
//!
//! [`CostAccount`] tracks both, plus a breakdown of channel-slot outcomes.

/// Running totals of the cost measures used throughout the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostAccount {
    /// Number of synchronous rounds (= channel slots) elapsed.
    pub rounds: u64,
    /// Point-to-point messages sent over links.
    pub p2p_messages: u64,
    /// Individual write attempts on the multiaccess channel.
    pub channel_writes: u64,
    /// Slots in which nobody wrote.
    pub slots_idle: u64,
    /// Slots in which exactly one node wrote (the message was heard by all).
    pub slots_success: u64,
    /// Slots in which two or more nodes wrote (collision detected by all).
    pub slots_collision: u64,
    /// Point-to-point messages erased in flight by an injected fault
    /// ([`FaultPlan`](crate::FaultPlan) drop events).  Dropped messages are
    /// *also* counted in `p2p_messages` — the send happened; the loss is at
    /// the delivery boundary.
    pub dropped_messages: u64,
    /// Channel slots that carried at least one write but were erased by an
    /// injected fault (not classified as success or collision).
    pub erased_slots: u64,
    /// Sum over executed rounds of the number of non-operational (off,
    /// booting, or crashed) nodes in that round — the integral of churn.
    pub crashed_rounds: u64,
    /// Individual lane-word write attempts
    /// ([`RoundIo::write_lanes_on`](crate::RoundIo::write_lanes_on)); at
    /// most one per node, channel, and round (same-node repeats OR-merge at
    /// staging time).
    pub lane_writes: u64,
    /// Channel-rounds whose lane sub-slot was busy and resolved to a
    /// [`LaneOutcome::Word`](crate::LaneOutcome).  Idle lane sub-slots are
    /// deliberately *not* counted: lanes are an opt-in sub-slot, and charging
    /// `K` idle lanes per round would retroactively change every account of
    /// a protocol that never stages a lane write.
    pub lanes_busy: u64,
    /// Channel-rounds whose busy lane sub-slot was erased by an injected
    /// fault (the word was destroyed in flight; not counted in `lanes_busy`).
    pub lanes_erased: u64,
    /// Payload words corrupted in flight by an injected fault: seeded
    /// single-bit flips applied to resolved lane words at the resolve
    /// boundary (see [`FaultPlan::corrupts_lane`](crate::FaultPlan)).
    pub corrupted_payloads: u64,
}

impl CostAccount {
    /// A zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's *communication complexity*: point-to-point messages plus time.
    pub fn communication(&self) -> u64 {
        self.p2p_messages + self.rounds
    }

    /// Total slots in which the channel was busy (success, collision, or an
    /// erased slot that carried writes).
    pub fn slots_busy(&self) -> u64 {
        self.slots_success + self.slots_collision + self.erased_slots
    }

    /// Adds another account to this one (e.g. to combine algorithm stages).
    pub fn absorb(&mut self, other: &CostAccount) {
        self.rounds += other.rounds;
        self.p2p_messages += other.p2p_messages;
        self.channel_writes += other.channel_writes;
        self.slots_idle += other.slots_idle;
        self.slots_success += other.slots_success;
        self.slots_collision += other.slots_collision;
        self.dropped_messages += other.dropped_messages;
        self.erased_slots += other.erased_slots;
        self.crashed_rounds += other.crashed_rounds;
        self.lane_writes += other.lane_writes;
        self.lanes_busy += other.lanes_busy;
        self.lanes_erased += other.lanes_erased;
        self.corrupted_payloads += other.corrupted_payloads;
    }

    /// Records `count` point-to-point messages.
    pub fn add_messages(&mut self, count: u64) {
        self.p2p_messages += count;
    }

    /// Records `count` rounds during which the channel stayed idle.
    pub fn add_idle_rounds(&mut self, count: u64) {
        self.rounds += count;
        self.slots_idle += count;
    }

    /// Records a single slot with the given number of writers.
    pub fn add_slot(&mut self, writers: u64) {
        self.add_round();
        self.add_channel_slot(writers);
    }

    /// Records one elapsed round without any slot.  With a multi-channel
    /// [`ChannelSet`](crate::ChannelSet) a round still advances time by one
    /// unit while resolving one slot **per channel**: engines call this once
    /// per round and [`CostAccount::add_channel_slot`] once per channel.
    pub fn add_round(&mut self) {
        self.rounds += 1;
    }

    /// Records one channel slot (classification + write attempts) without
    /// advancing the round clock; see [`CostAccount::add_round`].
    pub fn add_channel_slot(&mut self, writers: u64) {
        self.channel_writes += writers;
        match writers {
            0 => self.slots_idle += 1,
            1 => self.slots_success += 1,
            _ => self.slots_collision += 1,
        }
    }

    /// Records one channel slot whose `writers >= 1` write attempts were
    /// erased by an injected fault: the write attempts still count (they
    /// happened on the air) but the slot is classified as erased rather than
    /// success or collision.
    pub fn add_erased_slot(&mut self, writers: u64) {
        debug_assert!(writers >= 1, "an idle slot cannot be erased");
        self.channel_writes += writers;
        self.erased_slots += 1;
    }

    /// Records one busy lane sub-slot with `writers >= 1` staged words
    /// (idle lane sub-slots are not recorded — see
    /// [`CostAccount::lanes_busy`]).
    pub fn add_lane_slot(&mut self, writers: u64) {
        debug_assert!(writers >= 1, "idle lane sub-slots are not recorded");
        self.lane_writes += writers;
        self.lanes_busy += 1;
    }

    /// Records one busy lane sub-slot whose `writers >= 1` words were erased
    /// by an injected fault: the write attempts still count, but the
    /// sub-slot is classified as erased rather than busy.
    pub fn add_erased_lanes(&mut self, writers: u64) {
        debug_assert!(writers >= 1, "an idle lane sub-slot cannot be erased");
        self.lane_writes += writers;
        self.lanes_erased += 1;
    }

    /// Records `count` payload words corrupted in flight by an injected
    /// fault.
    pub fn add_corrupted_payloads(&mut self, count: u64) {
        self.corrupted_payloads += count;
    }

    /// Records `count` dropped point-to-point messages (the sends were
    /// already counted by [`CostAccount::add_messages`]).
    pub fn add_dropped_messages(&mut self, count: u64) {
        self.dropped_messages += count;
    }

    /// Records that `count` nodes were non-operational during one executed
    /// round.
    pub fn add_crashed_rounds(&mut self, count: u64) {
        self.crashed_rounds += count;
    }
}

impl std::ops::Add for CostAccount {
    type Output = CostAccount;
    fn add(self, rhs: CostAccount) -> CostAccount {
        let mut out = self;
        out.absorb(&rhs);
        out
    }
}

impl std::ops::AddAssign for CostAccount {
    fn add_assign(&mut self, rhs: CostAccount) {
        self.absorb(&rhs);
    }
}

impl std::fmt::Display for CostAccount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} p2p_msgs={} writes={} slots(idle/succ/coll/erased)={}/{}/{}/{} lanes(writes/busy/erased)={}/{}/{} dropped={} crashed_rounds={} corrupted={}",
            self.rounds,
            self.p2p_messages,
            self.channel_writes,
            self.slots_idle,
            self.slots_success,
            self.slots_collision,
            self.erased_slots,
            self.lane_writes,
            self.lanes_busy,
            self.lanes_erased,
            self.dropped_messages,
            self.crashed_rounds,
            self.corrupted_payloads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_classification() {
        let mut c = CostAccount::new();
        c.add_slot(0);
        c.add_slot(1);
        c.add_slot(5);
        assert_eq!(c.rounds, 3);
        assert_eq!(c.slots_idle, 1);
        assert_eq!(c.slots_success, 1);
        assert_eq!(c.slots_collision, 1);
        assert_eq!(c.channel_writes, 6);
        assert_eq!(c.slots_busy(), 2);
    }

    #[test]
    fn multi_channel_round_accounting() {
        // One round of a 3-channel set: rounds advance once, slots per channel.
        let mut c = CostAccount::new();
        c.add_round();
        c.add_channel_slot(0);
        c.add_channel_slot(1);
        c.add_channel_slot(4);
        assert_eq!(c.rounds, 1);
        assert_eq!(c.channel_writes, 5);
        assert_eq!(c.slots_idle, 1);
        assert_eq!(c.slots_success, 1);
        assert_eq!(c.slots_collision, 1);
        // Single-channel sugar decomposes identically.
        let mut d = CostAccount::new();
        d.add_slot(1);
        let mut e = CostAccount::new();
        e.add_round();
        e.add_channel_slot(1);
        assert_eq!(d, e);
    }

    #[test]
    fn fault_counters() {
        let mut c = CostAccount::new();
        c.add_round();
        c.add_erased_slot(3);
        c.add_dropped_messages(2);
        c.add_crashed_rounds(4);
        assert_eq!(c.erased_slots, 1);
        assert_eq!(c.channel_writes, 3);
        assert_eq!(c.slots_collision, 0);
        assert_eq!(c.slots_success, 0);
        assert_eq!(c.dropped_messages, 2);
        assert_eq!(c.crashed_rounds, 4);
        assert_eq!(c.slots_busy(), 1);
        let mut d = CostAccount::new();
        d.absorb(&c);
        assert_eq!(d, c);
        let s = format!("{c}");
        assert!(s.contains("erased") && s.contains("dropped") && s.contains("crashed"));
    }

    #[test]
    fn lane_and_corruption_counters() {
        let mut c = CostAccount::new();
        c.add_round();
        c.add_lane_slot(5);
        c.add_erased_lanes(2);
        c.add_corrupted_payloads(1);
        assert_eq!(c.lane_writes, 7);
        assert_eq!(c.lanes_busy, 1);
        assert_eq!(c.lanes_erased, 1);
        assert_eq!(c.corrupted_payloads, 1);
        // Lane activity stays out of the message-slot classification.
        assert_eq!(c.channel_writes, 0);
        assert_eq!(c.slots_busy(), 0);
        let mut d = CostAccount::new();
        d.absorb(&c);
        assert_eq!(d, c);
        let s = format!("{c}");
        assert!(s.contains("lanes") && s.contains("corrupted"));
    }

    #[test]
    fn communication_is_messages_plus_time() {
        let mut c = CostAccount::new();
        c.add_messages(10);
        c.add_idle_rounds(4);
        assert_eq!(c.communication(), 14);
    }

    #[test]
    fn absorb_and_add() {
        let mut a = CostAccount::new();
        a.add_messages(3);
        a.add_slot(1);
        let mut b = CostAccount::new();
        b.add_messages(2);
        b.add_idle_rounds(2);
        let c = a + b;
        assert_eq!(c.p2p_messages, 5);
        assert_eq!(c.rounds, 3);
        let mut d = CostAccount::new();
        d += c;
        assert_eq!(d, c);
    }

    #[test]
    fn display_is_nonempty() {
        let c = CostAccount::new();
        assert!(!format!("{c}").is_empty());
        assert!(!format!("{c:?}").is_empty());
    }
}
