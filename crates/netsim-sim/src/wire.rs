//! Compact binary wire format for the real-I/O backend (`netsim-io`).
//!
//! Everything a round exchanges between hosts is one of five frame kinds:
//!
//! | kind | frame | carries |
//! |------|-------|---------|
//! | 1 | [`Frame::P2p`] | a point-to-point message for one edge |
//! | 2 | [`Frame::Slot`] | one node's write onto one collision channel |
//! | 3 | [`Frame::Barrier`] | end-of-round control: counts that let every host detect round completeness and reproduce the engine's global cost accounting |
//! | 4 | [`Frame::Hello`] | startup handshake: host identity + initial done count |
//! | 5 | [`Frame::Lanes`] | one node's bit-parallel lane word on one channel; receivers OR all words per channel |
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------+---------+------+----------+--------···--------+---------+
//! | magic  | version | kind | body_len |       body        |  crc32  |
//! | u16    | u8      | u8   | u32      |  body_len bytes   |  u32    |
//! +--------+---------+------+----------+--------···--------+---------+
//! ```
//!
//! The CRC-32 (IEEE) trailer covers the header *and* body.  Decoding is
//! strict: bad magic/version/kind, a length field that disagrees with the
//! buffer, trailing bytes, a checksum mismatch, or a payload that does not
//! parse all produce a [`WireError`] — `decode` never panics and never reads
//! past the buffer.  `wire_codec_props` pins `decode(encode(f)) == f` and
//! no-panic on arbitrary bytes.
//!
//! Message payloads go through the [`WireMsg`] trait, the wire-facing
//! sibling of [`Protocol::Msg`](crate::node::Protocol): a protocol is
//! runnable on the socket backend iff its message type implements it.

use crate::channel::ChannelId;
use netsim_graph::NodeId;

/// Leading magic bytes: `0xA588`, a nod to the source paper (AfekLSY '88).
pub const MAGIC: u16 = 0xA588;
/// Current wire-format version; bumped on any layout change.
/// v2 added [`Frame::Lanes`] and the `lane_frames` barrier count.
pub const VERSION: u8 = 2;
/// Fixed header length in bytes (magic + version + kind + body_len).
pub const HEADER_LEN: usize = 8;
/// CRC-32 trailer length in bytes.
pub const TRAILER_LEN: usize = 4;

const KIND_P2P: u8 = 1;
const KIND_SLOT: u8 = 2;
const KIND_BARRIER: u8 = 3;
const KIND_HELLO: u8 = 4;
const KIND_LANES: u8 = 5;

/// Why a buffer failed to decode.  Every malformed input maps onto one of
/// these; none of them panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than header + trailer, or body shorter than a field.
    TooShort,
    /// Leading bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown [`VERSION`].
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// `body_len` disagrees with the buffer length.
    BadLength,
    /// Bytes after the declared end of frame.
    Trailing,
    /// CRC-32 trailer mismatch.
    BadChecksum,
    /// The frame body parsed but the embedded message payload did not.
    BadPayload,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::TooShort => write!(f, "buffer too short"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadLength => write!(f, "length field disagrees with buffer"),
            WireError::Trailing => write!(f, "trailing bytes after frame"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadPayload => write!(f, "embedded payload failed to parse"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.

static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`; the checksum carried in every frame trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Bound-checked little-endian reader.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::TooShort)?;
        if end > self.buf.len() {
            return Err(WireError::TooShort);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

// ---------------------------------------------------------------------------
// WireMsg: payload (de)serialization.

/// A message type that can cross the wire.  The socket backend requires
/// `P::Msg: WireMsg`; the simulator does not (in-process engines never
/// serialize).
///
/// `decode` receives *exactly* the payload bytes of one frame and must
/// consume all of them (returning `Err` otherwise) without panicking.
pub trait WireMsg: Sized {
    /// Appends this message's encoding to `out`.
    fn encode_msg(&self, out: &mut Vec<u8>);
    /// Parses a message from exactly `bytes`; `Err` on any mismatch.
    fn decode_msg(bytes: &[u8]) -> Result<Self, WireError>;
}

macro_rules! wire_uint {
    ($t:ty) => {
        impl WireMsg for $t {
            fn encode_msg(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_msg(bytes: &[u8]) -> Result<Self, WireError> {
                let arr: [u8; core::mem::size_of::<$t>()] =
                    bytes.try_into().map_err(|_| WireError::BadPayload)?;
                Ok(<$t>::from_le_bytes(arr))
            }
        }
    };
}

wire_uint!(u8);
wire_uint!(u16);
wire_uint!(u32);
wire_uint!(u64);

impl WireMsg for () {
    fn encode_msg(&self, _out: &mut Vec<u8>) {}
    fn decode_msg(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::BadPayload)
        }
    }
}

impl WireMsg for Vec<u8> {
    fn encode_msg(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode_msg(bytes: &[u8]) -> Result<Self, WireError> {
        Ok(bytes.to_vec())
    }
}

impl WireMsg for (u64, u64) {
    fn encode_msg(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        out.extend_from_slice(&self.1.to_le_bytes());
    }
    fn decode_msg(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() != 16 {
            return Err(WireError::BadPayload);
        }
        let mut r = Reader::new(bytes);
        Ok((r.u64()?, r.u64()?))
    }
}

// ---------------------------------------------------------------------------
// Frames.

/// One wire frame.  `M` is the protocol message type (see [`WireMsg`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame<M> {
    /// A point-to-point message sent during `round`.  `seq` is a per-host,
    /// per-round staging counter: receivers sort arrivals by
    /// `(from, seq)` to reconstruct the simulator's deterministic inbox
    /// order regardless of UDP reordering.
    P2p {
        /// Round the message was staged in (delivered at `round + 1`).
        round: u64,
        /// Sending node.
        from: NodeId,
        /// Receiving node (must be a graph neighbour of `from`).
        to: NodeId,
        /// Staging order within `(round, sending host)`.
        seq: u32,
        /// Protocol payload.
        payload: M,
    },
    /// One node's write onto one collision channel during `round`.
    /// Broadcast to every host; collision/idle/erasure resolution happens
    /// receiver-side from the set of `Slot` frames per channel.
    Slot {
        /// Round the write was staged in.
        round: u64,
        /// Channel written.
        chan: ChannelId,
        /// Writing node.
        from: NodeId,
        /// Protocol payload.
        payload: M,
    },
    /// End-of-round control frame, broadcast by each host after it has
    /// transmitted all of its round-`round` traffic.  The counts make the
    /// round *self-delimiting*: a receiver knows round `round` is complete
    /// once it holds all `hosts` barriers, `sent_to[self]` p2p frames from
    /// each peer, and `slot_frames` slot frames from each peer.
    Barrier {
        /// Round being closed.
        round: u64,
        /// Sending host.
        host: u16,
        /// Number of this host's nodes that are done or fault-exempt after
        /// stepping `round` (the engine's `done_count + undone_exempt`
        /// contribution, used for distributed quiescence detection).
        settled: u32,
        /// Messages staged by this host's nodes *before* fault drops
        /// (feeds `CostAccount::p2p_messages`).
        staged: u32,
        /// Messages dropped by the fault plan at the delivery boundary
        /// (feeds `CostAccount::dropped_messages`).
        dropped: u32,
        /// Slot frames this host broadcast (each goes to every host).
        slot_frames: u32,
        /// Lane frames this host broadcast (each goes to every host).
        lane_frames: u32,
        /// P2p frames actually transmitted to each destination host,
        /// indexed by host id.
        sent_to: Vec<u32>,
    },
    /// Startup handshake: identifies the sender and carries the pre-round-0
    /// state needed for the initial quiescence check.  Resent until every
    /// peer has been heard from.
    Hello {
        /// Sending host.
        host: u16,
        /// Total number of hosts in the run.
        hosts: u16,
        /// Total node count (sanity-checked against the local graph).
        nodes: u32,
        /// Channel count (sanity-checked against the local `ChannelSet`).
        k: u16,
        /// Initially done or fault-exempt nodes owned by the sender.
        settled: u32,
    },
    /// One node's bit-parallel lane word on one channel during `round`.
    /// Broadcast to every host; receivers OR all round-`round` words per
    /// channel (then apply erasure/corruption) to reproduce the engines'
    /// [`LaneOutcome`](crate::LaneOutcome) resolution.
    Lanes {
        /// Round the word was staged in.
        round: u64,
        /// Channel written.
        chan: ChannelId,
        /// Writing node.
        from: NodeId,
        /// The 64-lane word (already per-node OR-merged by the sender).
        word: u64,
    },
}

impl<M: WireMsg> Frame<M> {
    /// Appends the full encoding of this frame (header, body, CRC trailer)
    /// to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(match self {
            Frame::P2p { .. } => KIND_P2P,
            Frame::Slot { .. } => KIND_SLOT,
            Frame::Barrier { .. } => KIND_BARRIER,
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Lanes { .. } => KIND_LANES,
        });
        out.extend_from_slice(&[0; 4]); // body_len backpatched below
        let body_start = out.len();
        match self {
            Frame::P2p {
                round,
                from,
                to,
                seq,
                payload,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&(from.index() as u32).to_le_bytes());
                out.extend_from_slice(&(to.index() as u32).to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                payload.encode_msg(out);
            }
            Frame::Slot {
                round,
                chan,
                from,
                payload,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&chan.0.to_le_bytes());
                out.extend_from_slice(&(from.index() as u32).to_le_bytes());
                payload.encode_msg(out);
            }
            Frame::Barrier {
                round,
                host,
                settled,
                staged,
                dropped,
                slot_frames,
                lane_frames,
                sent_to,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&host.to_le_bytes());
                out.extend_from_slice(&settled.to_le_bytes());
                out.extend_from_slice(&staged.to_le_bytes());
                out.extend_from_slice(&dropped.to_le_bytes());
                out.extend_from_slice(&slot_frames.to_le_bytes());
                out.extend_from_slice(&lane_frames.to_le_bytes());
                let n = u16::try_from(sent_to.len()).expect("more than 65535 hosts");
                out.extend_from_slice(&n.to_le_bytes());
                for s in sent_to {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Frame::Hello {
                host,
                hosts,
                nodes,
                k,
                settled,
            } => {
                out.extend_from_slice(&host.to_le_bytes());
                out.extend_from_slice(&hosts.to_le_bytes());
                out.extend_from_slice(&nodes.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&settled.to_le_bytes());
            }
            Frame::Lanes {
                round,
                chan,
                from,
                word,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&chan.0.to_le_bytes());
                out.extend_from_slice(&(from.index() as u32).to_le_bytes());
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        let body_len = (out.len() - body_start) as u32;
        out[start + 4..start + 8].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Convenience: encodes into a fresh buffer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes exactly one frame from `bytes`.  Strict: the buffer must
    /// contain exactly one well-formed frame (no trailing bytes), the
    /// checksum must verify, and the payload must parse completely.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(WireError::TooShort);
        }
        let mut hdr = Reader::new(&bytes[..HEADER_LEN]);
        if hdr.u16()? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = hdr.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = hdr.u8()?;
        if !(KIND_P2P..=KIND_LANES).contains(&kind) {
            return Err(WireError::BadKind(kind));
        }
        let body_len = hdr.u32()? as usize;
        let total = HEADER_LEN
            .checked_add(body_len)
            .and_then(|t| t.checked_add(TRAILER_LEN))
            .ok_or(WireError::BadLength)?;
        match bytes.len() {
            l if l < total => return Err(WireError::BadLength),
            l if l > total => return Err(WireError::Trailing),
            _ => {}
        }
        let covered = HEADER_LEN + body_len;
        let stored = u32::from_le_bytes(bytes[covered..total].try_into().unwrap());
        if crc32(&bytes[..covered]) != stored {
            return Err(WireError::BadChecksum);
        }
        let mut r = Reader::new(&bytes[HEADER_LEN..covered]);
        let frame = match kind {
            KIND_P2P => {
                let round = r.u64()?;
                let from = NodeId(r.u32()? as usize);
                let to = NodeId(r.u32()? as usize);
                let seq = r.u32()?;
                let payload = M::decode_msg(r.rest()).map_err(|_| WireError::BadPayload)?;
                Frame::P2p {
                    round,
                    from,
                    to,
                    seq,
                    payload,
                }
            }
            KIND_SLOT => {
                let round = r.u64()?;
                let chan = ChannelId(r.u16()?);
                let from = NodeId(r.u32()? as usize);
                let payload = M::decode_msg(r.rest()).map_err(|_| WireError::BadPayload)?;
                Frame::Slot {
                    round,
                    chan,
                    from,
                    payload,
                }
            }
            KIND_BARRIER => {
                let round = r.u64()?;
                let host = r.u16()?;
                let settled = r.u32()?;
                let staged = r.u32()?;
                let dropped = r.u32()?;
                let slot_frames = r.u32()?;
                let lane_frames = r.u32()?;
                let n = r.u16()? as usize;
                let mut sent_to = Vec::with_capacity(n);
                for _ in 0..n {
                    sent_to.push(r.u32()?);
                }
                r.done()?;
                Frame::Barrier {
                    round,
                    host,
                    settled,
                    staged,
                    dropped,
                    slot_frames,
                    lane_frames,
                    sent_to,
                }
            }
            KIND_HELLO => {
                let host = r.u16()?;
                let hosts = r.u16()?;
                let nodes = r.u32()?;
                let k = r.u16()?;
                let settled = r.u32()?;
                r.done()?;
                Frame::Hello {
                    host,
                    hosts,
                    nodes,
                    k,
                    settled,
                }
            }
            KIND_LANES => {
                let round = r.u64()?;
                let chan = ChannelId(r.u16()?);
                let from = NodeId(r.u32()? as usize);
                let word = r.u64()?;
                r.done()?;
                Frame::Lanes {
                    round,
                    chan,
                    from,
                    word,
                }
            }
            _ => unreachable!("kind validated above"),
        };
        Ok(frame)
    }

    /// The round this frame belongs to (`Hello` frames are round-less and
    /// report 0).
    pub fn round(&self) -> u64 {
        match self {
            Frame::P2p { round, .. }
            | Frame::Slot { round, .. }
            | Frame::Barrier { round, .. }
            | Frame::Lanes { round, .. } => *round,
            Frame::Hello { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame<u64>) {
        let bytes = f.encode_to_vec();
        assert_eq!(Frame::<u64>::decode(&bytes), Ok(f));
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Frame::P2p {
            round: 7,
            from: NodeId(3),
            to: NodeId(4),
            seq: 12,
            payload: 0xDEAD_BEEF_u64,
        });
        roundtrip(Frame::Slot {
            round: u64::MAX,
            chan: ChannelId(63),
            from: NodeId(0),
            payload: 0,
        });
        roundtrip(Frame::Barrier {
            round: 2,
            host: 1,
            settled: 10,
            staged: 99,
            dropped: 3,
            slot_frames: 5,
            lane_frames: 2,
            sent_to: vec![0, 17, 4],
        });
        roundtrip(Frame::Hello {
            host: 0,
            hosts: 2,
            nodes: 1024,
            k: 16,
            settled: 0,
        });
        roundtrip(Frame::Lanes {
            round: 3,
            chan: ChannelId(7),
            from: NodeId(42),
            word: u64::MAX,
        });
    }

    #[test]
    fn vec_payload_roundtrips() {
        let f: Frame<Vec<u8>> = Frame::Slot {
            round: 1,
            chan: ChannelId(0),
            from: NodeId(9),
            payload: vec![1, 2, 3, 255],
        };
        let bytes = f.encode_to_vec();
        assert_eq!(Frame::<Vec<u8>>::decode(&bytes), Ok(f));
    }

    #[test]
    fn strict_rejections() {
        let good = Frame::<u64>::P2p {
            round: 1,
            from: NodeId(0),
            to: NodeId(1),
            seq: 0,
            payload: 42,
        }
        .encode_to_vec();

        assert_eq!(Frame::<u64>::decode(&[]), Err(WireError::TooShort));
        assert_eq!(
            Frame::<u64>::decode(&good[..good.len() - 1]),
            Err(WireError::BadLength)
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(Frame::<u64>::decode(&trailing), Err(WireError::Trailing));

        let mut magic = good.clone();
        magic[0] ^= 0xFF;
        assert_eq!(Frame::<u64>::decode(&magic), Err(WireError::BadMagic));

        let mut ver = good.clone();
        ver[2] = 9;
        assert_eq!(Frame::<u64>::decode(&ver), Err(WireError::BadVersion(9)));

        let mut kind = good.clone();
        kind[3] = 200;
        assert_eq!(Frame::<u64>::decode(&kind), Err(WireError::BadKind(200)));

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(Frame::<u64>::decode(&flipped), Err(WireError::BadChecksum));
    }

    #[test]
    fn checksum_is_stable() {
        // Pin the CRC-32 (IEEE) implementation against the standard test
        // vector so a table regression cannot silently re-key every frame.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_length_is_enforced() {
        // Corrupt the body so the u64 payload sees 7 bytes: shrink body_len
        // and re-checksum; the payload decoder must reject, not panic.
        let f = Frame::<u64>::Slot {
            round: 0,
            chan: ChannelId(1),
            from: NodeId(2),
            payload: 77,
        };
        let mut bytes = f.encode_to_vec();
        let body_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) - 1;
        bytes[4..8].copy_from_slice(&body_len.to_le_bytes());
        bytes.truncate(HEADER_LEN + body_len as usize);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::<u64>::decode(&bytes), Err(WireError::BadPayload));
    }
}
