//! The per-processor protocol interface of the synchronous engine.
//!
//! A multimedia-network algorithm is written as a [`Protocol`] state machine.
//! In every round the engine calls [`Protocol::step`] exactly once per node;
//! the node observes the messages delivered to it (sent by its neighbours in
//! the previous round) and the outcome of the previous channel slot, and
//! decides which point-to-point messages to send and whether to write to the
//! channel in the current slot.  This is the model of Section 2 of the paper.
//!
//! Message plumbing is pooled **and arena-backed**: a step writes its sends
//! into a borrowed [`OutboxBuffer`] owned by the engine (or by the
//! simulation wrapper when using [`RoundIo::detached`]).  The buffer interns
//! each payload once into its [`PayloadArena`] and stages 4-byte
//! [`PayloadHandle`]s — a broadcast stores one payload however many
//! neighbours it reaches — so steady-state rounds perform no heap
//! allocation even for non-`Copy` message types (see the
//! [`payload`](crate::payload) module docs for the epoch discipline).
//! Deliveries are read back through the [`Inbox`] view, which yields
//! `(sender, &payload)` pairs whether the engine stores materialised
//! messages (the reference clone path) or arena handles (the flat engines).

use crate::channel::SlotOutcome;
use crate::payload::{PayloadArena, PayloadHandle};
use netsim_graph::{Neighbors, NodeId};

/// A distributed algorithm, as executed by one processor.
pub trait Protocol {
    /// Message type carried both by the point-to-point links and the channel.
    ///
    /// The paper assumes messages of `O(log n)` bits plus one data element;
    /// protocol implementations should keep their messages within that spirit
    /// (ids, counters, one weight/value), but the engine does not enforce a
    /// bit bound — variable-length multimedia frames (`Vec<u8>` and friends)
    /// are first-class citizens of the arena-backed delivery path.
    type Msg: Clone;

    /// Executes one round.
    ///
    /// Inputs (previous-round deliveries, previous slot outcome) and outputs
    /// (link sends, channel write) are exchanged through `io`.
    fn step(&mut self, io: &mut RoundIo<'_, Self::Msg>);

    /// Returns `true` once this node has terminated locally.
    ///
    /// The engine stops when every node is done and no messages are in
    /// flight.  For the engine's O(1) quiescence tracking to be sound, the
    /// value returned must only change as a result of [`Protocol::step`]
    /// (which is the only way engine users can reach `&mut self` anyway).
    fn is_done(&self) -> bool;
}

/// A staged point-to-point message: `(to, from, payload handle)`.
///
/// The payload itself lives in the staging [`PayloadArena`]; the triple is
/// `Copy`, so the engine's bucketing passes move 20-byte records regardless
/// of the message type.
pub(crate) type Staged = (NodeId, NodeId, PayloadHandle);

/// A reusable buffer of staged sends plus the arena their payloads are
/// interned in, pooled across rounds by the engine.
///
/// Protocol steps append to it through [`RoundIo::send`] /
/// [`RoundIo::send_all`]; the engine (or a simulation wrapper using
/// [`RoundIo::detached`]) drains it afterwards.  Clearing keeps the backing
/// capacity — of the entry vector and of the payload slab — which is what
/// makes steady-state rounds allocation-free.
#[derive(Debug)]
pub struct OutboxBuffer<M> {
    pub(crate) entries: Vec<Staged>,
    pub(crate) arena: PayloadArena<M>,
}

impl<M> OutboxBuffer<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        OutboxBuffer {
            entries: Vec::new(),
            arena: PayloadArena::new(),
        }
    }

    /// Number of staged sends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no sends are staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all staged sends and expires their payload epoch, keeping
    /// every allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.arena.expire();
    }

    /// The staging payload arena (interned payloads of the current epoch).
    pub fn arena(&self) -> &PayloadArena<M> {
        &self.arena
    }

    /// Drains the staged sends as owned `(to, msg)` pairs, reproducing the
    /// seed's pre-arena clone path exactly: a payload is **cloned** while
    /// later entries still share its handle and **moved** out of the arena
    /// on its last use — so a unicast costs no clone and a degree-`d`
    /// broadcast costs `d - 1`, just as when the seed cloned in `send_all`
    /// and moved through the staging buffer.  The
    /// [`ReferenceEngine`](crate::ReferenceEngine) and detached simulation
    /// wrappers use this; the flat engines move handles instead and never
    /// clone.  When the iterator is dropped the payload epoch expires, so
    /// the buffer is immediately reusable (and heap payloads become
    /// recyclable).
    pub fn drain_sends(&mut self) -> DrainSends<'_, M>
    where
        M: Clone,
    {
        let OutboxBuffer { entries, arena } = self;
        DrainSends {
            entries: entries.drain(..),
            arena,
        }
    }

    /// Visits the staged sends as `(to, &payload)` pairs in send order
    /// **without cloning**, then clears the buffer and retires the payload
    /// epoch (heap payloads become recyclable).
    ///
    /// Simulation wrappers that re-wrap payloads into their own message type
    /// use this to clone into *recycled* storage instead of paying a fresh
    /// allocation per send (see the channel synchronizer).
    pub fn drain_sends_by_ref(&mut self, mut f: impl FnMut(NodeId, &M)) {
        let OutboxBuffer { entries, arena } = self;
        for (to, _, h) in entries.drain(..) {
            f(to, arena.get(h));
        }
        arena.expire();
    }
}

impl<M> Default for OutboxBuffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Draining iterator returned by [`OutboxBuffer::drain_sends`].
#[derive(Debug)]
pub struct DrainSends<'a, M> {
    entries: std::vec::Drain<'a, Staged>,
    arena: &'a mut PayloadArena<M>,
}

impl<'a, M: Clone> Iterator for DrainSends<'a, M> {
    type Item = (NodeId, M);

    fn next(&mut self) -> Option<(NodeId, M)> {
        let (to, _, h) = self.entries.next()?;
        // A handle's staged entries are contiguous (one `send` / `send_all`
        // call at a time appends them), so this entry is the payload's last
        // use exactly when the next entry carries a different handle — clone
        // for shared earlier uses, move on the last.
        let shared_ahead = self
            .entries
            .as_slice()
            .first()
            .is_some_and(|&(_, _, ahead)| ahead == h);
        let msg = if shared_ahead {
            self.arena.get(h).clone()
        } else {
            self.arena.take(h)
        };
        Some((to, msg))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.entries.size_hint()
    }
}

impl<'a, M> Drop for DrainSends<'a, M> {
    fn drop(&mut self) {
        // End of the staging epoch: undrained entries are discarded by the
        // inner `Drain`, and every payload is retired (heap payloads move to
        // the graveyard for recycling).
        self.arena.expire();
    }
}

/// Read-only view of one node's deliveries for the current round, yielding
/// `(sender, &payload)` pairs ordered by the sender's node index.
///
/// The two variants correspond to the two delivery substrates: materialised
/// `(from, msg)` pairs (reference engine, detached wrappers) and arena
/// handles resolved against a [`PayloadArena`] (the flat engines).  Protocol
/// code cannot tell them apart — which is precisely what the
/// `engine_conformance` suite checks.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    entries: InboxEntries<'a, M>,
}

#[derive(Debug)]
enum InboxEntries<'a, M> {
    /// Materialised messages (one owned `M` per delivery).
    Direct(&'a [(NodeId, M)]),
    /// Arena handles (one interned `M` per *send*, shared by broadcasts).
    Arena {
        entries: &'a [(NodeId, PayloadHandle)],
        payloads: &'a PayloadArena<M>,
    },
}

impl<'a, M> Clone for Inbox<'a, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, M> Copy for Inbox<'a, M> {}
impl<'a, M> Clone for InboxEntries<'a, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, M> Copy for InboxEntries<'a, M> {}

impl<'a, M> Inbox<'a, M> {
    /// A view over materialised `(sender, message)` pairs; the constructor
    /// used by detached simulation wrappers and the reference engine.
    pub fn direct(entries: &'a [(NodeId, M)]) -> Self {
        Inbox {
            entries: InboxEntries::Direct(entries),
        }
    }

    /// A view over arena handles; used by the flat engines.
    pub(crate) fn arena(
        entries: &'a [(NodeId, PayloadHandle)],
        payloads: &'a PayloadArena<M>,
    ) -> Self {
        Inbox {
            entries: InboxEntries::Arena { entries, payloads },
        }
    }

    /// An empty inbox.
    pub fn empty() -> Self {
        Inbox {
            entries: InboxEntries::Direct(&[]),
        }
    }

    /// Number of messages delivered this round.
    pub fn len(&self) -> usize {
        match self.entries {
            InboxEntries::Direct(s) => s.len(),
            InboxEntries::Arena { entries, .. } => entries.len(),
        }
    }

    /// `true` when nothing was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th delivery (senders ascending), if any.
    pub fn get(&self, i: usize) -> Option<(NodeId, &'a M)> {
        match self.entries {
            InboxEntries::Direct(s) => s.get(i).map(|(from, m)| (*from, m)),
            InboxEntries::Arena { entries, payloads } => {
                entries.get(i).map(|&(from, h)| (from, payloads.get(h)))
            }
        }
    }

    /// The first delivery, if any.
    pub fn first(&self) -> Option<(NodeId, &'a M)> {
        self.get(0)
    }

    /// Iterates the deliveries as `(sender, &payload)` pairs, ordered by
    /// sender node index (then send order within one sender).
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            entries: self.entries,
            next: 0,
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`], yielding `(sender, &payload)` pairs.
#[derive(Clone, Debug)]
pub struct InboxIter<'a, M> {
    entries: InboxEntries<'a, M>,
    next: usize,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (NodeId, &'a M);

    fn next(&mut self) -> Option<(NodeId, &'a M)> {
        let i = self.next;
        let item = match self.entries {
            InboxEntries::Direct(s) => s.get(i).map(|(from, m)| (*from, m)),
            InboxEntries::Arena { entries, payloads } => {
                entries.get(i).map(|&(from, h)| (from, payloads.get(h)))
            }
        };
        if item.is_some() {
            self.next = i + 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.entries {
            InboxEntries::Direct(s) => s.len().saturating_sub(self.next),
            InboxEntries::Arena { entries, .. } => entries.len().saturating_sub(self.next),
        };
        (remaining, Some(remaining))
    }
}

impl<'a, M> ExactSizeIterator for InboxIter<'a, M> {}

/// Per-round input/output window handed to [`Protocol::step`].
#[derive(Debug)]
pub struct RoundIo<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) neighbors: Neighbors<'a>,
    pub(crate) inbox: Inbox<'a, M>,
    pub(crate) prev_slot: &'a SlotOutcome<M>,
    pub(crate) outbox: &'a mut OutboxBuffer<M>,
    pub(crate) channel_write: Option<M>,
}

impl<'a, M: Clone> RoundIo<'a, M> {
    /// Builds a detached `RoundIo`, outside of a [`SyncEngine`](crate::SyncEngine) run.
    ///
    /// This is the hook used by *simulation wrappers* such as the channel
    /// synchronizer of the paper's Section 7.1: the wrapper drives an
    /// existing synchronous [`Protocol`] round by round on a different
    /// substrate (e.g. an asynchronous engine) by constructing the round
    /// window itself and collecting the outputs.  The sends of the step land
    /// in `outbox` (drain them with [`OutboxBuffer::drain_sends`]); the
    /// channel write is returned by [`RoundIo::finish`].  Reusing one
    /// `OutboxBuffer` across rounds keeps the wrapper allocation-free too.
    pub fn detached(
        node: NodeId,
        round: u64,
        neighbors: Neighbors<'a>,
        inbox: Inbox<'a, M>,
        prev_slot: &'a SlotOutcome<M>,
        outbox: &'a mut OutboxBuffer<M>,
    ) -> Self {
        RoundIo {
            node,
            round,
            neighbors,
            inbox,
            prev_slot,
            outbox,
            channel_write: None,
        }
    }

    /// Consumes the window, returning the channel write requested during the
    /// step (the link sends are in the `OutboxBuffer` the window was built
    /// over).
    pub fn finish(self) -> Option<M> {
        self.channel_write
    }

    /// The identity of the executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current round number (first round is 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's incident links as a CSR [`Neighbors`] view (iterates
    /// `(neighbour, edge id)` pairs), in the graph's ascending
    /// edge-weight order.
    pub fn neighbors(&self) -> Neighbors<'a> {
        self.neighbors
    }

    /// Number of incident links.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages delivered this round (sent by neighbours in the previous
    /// round), as an [`Inbox`] view ordered by the sender's node index.
    pub fn inbox(&self) -> Inbox<'a, M> {
        self.inbox
    }

    /// Outcome of the previous channel slot, as heard by every node.
    ///
    /// In round 0 this is [`SlotOutcome::Idle`].
    pub fn prev_slot(&self) -> &SlotOutcome<M> {
        self.prev_slot
    }

    /// Takes a dead payload from the staging arena for reuse, if one is
    /// available.
    ///
    /// Heap-carrying protocols (`Vec<u8>` frames and the like) overwrite the
    /// returned value in place and pass it back to [`RoundIo::send`] /
    /// [`RoundIo::send_all`], closing the allocation loop: after warm-up the
    /// payload buffers of round `r` become the payload buffers of round
    /// `r + 2` (the arena pair swaps roles every round).  Returns `None` for
    /// payload types without heap storage and while the graveyard is empty.
    pub fn recycle_payload(&mut self) -> Option<M> {
        self.outbox.arena.recycle()
    }

    /// Sends `msg` to the neighbour `to` (delivered at the start of the next
    /// round).
    ///
    /// The payload is interned into the staging arena and staged as a
    /// handle; nothing is cloned.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this node: the point-to-point
    /// medium only connects adjacent processors.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        let h = self.outbox.arena.intern(msg);
        self.outbox.entries.push((to, self.node, h));
    }

    /// Sends `msg` to every neighbour.
    ///
    /// Intern-on-broadcast: the payload is stored **once** and every
    /// neighbour's delivery entry shares the handle, so a degree-`d`
    /// broadcast costs one payload move plus `d` staged 20-byte records —
    /// not `d` clones.
    pub fn send_all(&mut self, msg: M) {
        let targets = self.neighbors.targets();
        if targets.is_empty() {
            return;
        }
        let h = self.outbox.arena.intern(msg);
        for &v in targets {
            self.outbox.entries.push((v, self.node, h));
        }
    }

    /// Writes `msg` to the multiaccess channel in the current slot.
    ///
    /// If more than one node writes in the same slot, every node observes a
    /// collision in the next round.  Calling this twice in one round keeps
    /// only the last message (a node owns a single transmitter).
    pub fn write_channel(&mut self, msg: M) {
        self.channel_write = Some(msg);
    }

    /// Returns `true` if a channel write has been requested this round.
    pub fn will_write_channel(&self) -> bool {
        self.channel_write.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::EdgeId;

    const TARGETS: [NodeId; 2] = [NodeId(1), NodeId(2)];
    const EDGES: [EdgeId; 2] = [EdgeId(0), EdgeId(1)];

    fn make_io<'a>(
        neighbors: Neighbors<'a>,
        inbox: &'a [(NodeId, u32)],
        prev: &'a SlotOutcome<u32>,
        outbox: &'a mut OutboxBuffer<u32>,
    ) -> RoundIo<'a, u32> {
        RoundIo::detached(NodeId(0), 3, neighbors, Inbox::direct(inbox), prev, outbox)
    }

    #[test]
    fn accessors() {
        let inbox = [(NodeId(1), 9u32)];
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let io = make_io(Neighbors::new(&TARGETS, &EDGES), &inbox, &prev, &mut outbox);
        assert_eq!(io.id(), NodeId(0));
        assert_eq!(io.round(), 3);
        assert_eq!(io.degree(), 2);
        assert_eq!(io.inbox().len(), 1);
        assert_eq!(io.inbox().first(), Some((NodeId(1), &9)));
        assert!(io.prev_slot().is_idle());
        assert!(!io.will_write_channel());
        assert!(io.finish().is_none());
    }

    #[test]
    fn send_and_broadcast() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.send(NodeId(2), 5);
        io.send_all(7);
        io.write_channel(1);
        io.write_channel(2);
        assert!(io.will_write_channel());
        assert_eq!(io.finish(), Some(2));
        assert_eq!(outbox.len(), 3);
        // The broadcast interned one payload shared by both entries.
        assert_eq!(outbox.arena().live(), 2);
        let sends: Vec<(NodeId, u32)> = outbox.drain_sends().collect();
        assert_eq!(sends, vec![(NodeId(2), 5), (NodeId(1), 7), (NodeId(2), 7)]);
        assert!(outbox.is_empty());
        assert!(outbox.arena().is_empty());
    }

    #[test]
    fn outbox_is_reusable_across_rounds() {
        let targets = [NodeId(1)];
        let edges = [EdgeId(0)];
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        for round in 0..3u64 {
            let mut io = RoundIo::detached(
                NodeId(0),
                round,
                Neighbors::new(&targets, &edges),
                Inbox::empty(),
                &prev,
                &mut outbox,
            );
            io.send(NodeId(1), round as u32);
            assert!(io.finish().is_none());
            let sends: Vec<(NodeId, u32)> = outbox.drain_sends().collect();
            assert_eq!(sends, vec![(NodeId(1), round as u32)]);
        }
    }

    #[test]
    fn recycle_hands_back_heap_payloads() {
        // `drain_sends_by_ref` leaves the interned payloads in the arena, so
        // expiry parks them for `recycle_payload` (the synchronizer's loop);
        // the moving `drain_sends` transfers ownership out instead — exactly
        // the seed semantics — leaving nothing to recycle.
        let targets = [NodeId(1)];
        let edges = [EdgeId(0)];
        let prev: SlotOutcome<Vec<u8>> = SlotOutcome::Idle;
        let mut outbox: OutboxBuffer<Vec<u8>> = OutboxBuffer::new();
        for round in 0..4u64 {
            let mut io = RoundIo::detached(
                NodeId(0),
                round,
                Neighbors::new(&targets, &edges),
                Inbox::empty(),
                &prev,
                &mut outbox,
            );
            let mut frame = io.recycle_payload().unwrap_or_default();
            if round >= 1 {
                assert!(frame.capacity() >= 64, "capacity must be recycled");
            }
            frame.clear();
            frame.resize(64, round as u8);
            io.send(NodeId(1), frame);
            drop(io);
            let mut sends: Vec<(NodeId, Vec<u8>)> = Vec::new();
            outbox.drain_sends_by_ref(|to, msg| sends.push((to, msg.clone())));
            assert_eq!(sends.len(), 1);
            assert_eq!(sends[0].1, vec![round as u8; 64]);
        }
    }

    #[test]
    fn drain_sends_moves_on_last_use() {
        // Seed clone-path parity: a unicast payload is moved (no clone), a
        // degree-d broadcast is cloned d - 1 times with the interned
        // original moved on its last entry — afterwards the arena holds
        // nothing recyclable.
        let prev: SlotOutcome<Vec<u8>> = SlotOutcome::Idle;
        let mut outbox: OutboxBuffer<Vec<u8>> = OutboxBuffer::new();
        let mut io = make_vec_io(&prev, &mut outbox);
        io.send(NodeId(1), vec![7; 32]);
        io.send_all(vec![8; 32]);
        drop(io);
        let sends: Vec<(NodeId, Vec<u8>)> = outbox.drain_sends().collect();
        assert_eq!(sends.len(), 3);
        assert_eq!(sends[0], (NodeId(1), vec![7; 32]));
        assert_eq!(sends[1], (NodeId(1), vec![8; 32]));
        assert_eq!(sends[2], (NodeId(2), vec![8; 32]));
        let mut outbox2: OutboxBuffer<Vec<u8>> = OutboxBuffer::new();
        std::mem::swap(&mut outbox, &mut outbox2);
        assert_eq!(
            outbox2.arena.recycle(),
            None,
            "moved-out payloads must not reach the graveyard"
        );
    }

    fn make_vec_io<'a>(
        prev: &'a SlotOutcome<Vec<u8>>,
        outbox: &'a mut OutboxBuffer<Vec<u8>>,
    ) -> RoundIo<'a, Vec<u8>> {
        RoundIo::detached(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            prev,
            outbox,
        )
    }

    #[test]
    fn inbox_views_are_equivalent() {
        let direct = [(NodeId(1), 10u32), (NodeId(4), 20)];
        let mut arena = PayloadArena::new();
        let h1 = arena.intern(10u32);
        let h2 = arena.intern(20u32);
        let entries = [(NodeId(1), h1), (NodeId(4), h2)];
        let a = Inbox::direct(&direct);
        let b = Inbox::arena(&entries, &arena);
        assert_eq!(a.len(), b.len());
        let va: Vec<(NodeId, u32)> = a.iter().map(|(f, &m)| (f, m)).collect();
        let vb: Vec<(NodeId, u32)> = b.iter().map(|(f, &m)| (f, m)).collect();
        assert_eq!(va, vb);
        assert_eq!(a.first().map(|(f, &m)| (f, m)), Some((NodeId(1), 10)));
        assert_eq!(b.get(1).map(|(f, &m)| (f, m)), Some((NodeId(4), 20)));
        assert!(Inbox::<u32>::empty().is_empty());
    }

    #[test]
    #[should_panic]
    fn send_to_non_neighbor_panics() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.send(NodeId(9), 1);
    }
}
