//! The per-processor protocol interface of the synchronous engine.
//!
//! A multimedia-network algorithm is written as a [`Protocol`] state machine.
//! In every round the engine calls [`Protocol::step`] exactly once per node;
//! the node observes the messages delivered to it (sent by its neighbours in
//! the previous round) and the outcome of the previous channel slot, and
//! decides which point-to-point messages to send and whether to write to the
//! channel in the current slot.  This is the model of Section 2 of the paper.
//!
//! Message plumbing is pooled: a step writes its sends into a borrowed
//! [`OutboxBuffer`] owned by the engine (or by the simulation wrapper when
//! using [`RoundIo::detached`]), so steady-state rounds perform no heap
//! allocation.

use crate::channel::SlotOutcome;
use netsim_graph::{Neighbors, NodeId};

/// A distributed algorithm, as executed by one processor.
pub trait Protocol {
    /// Message type carried both by the point-to-point links and the channel.
    ///
    /// The paper assumes messages of `O(log n)` bits plus one data element;
    /// protocol implementations should keep their messages within that spirit
    /// (ids, counters, one weight/value), but the engine does not enforce a
    /// bit bound.
    type Msg: Clone;

    /// Executes one round.
    ///
    /// Inputs (previous-round deliveries, previous slot outcome) and outputs
    /// (link sends, channel write) are exchanged through `io`.
    fn step(&mut self, io: &mut RoundIo<'_, Self::Msg>);

    /// Returns `true` once this node has terminated locally.
    ///
    /// The engine stops when every node is done and no messages are in
    /// flight.  For the engine's O(1) quiescence tracking to be sound, the
    /// value returned must only change as a result of [`Protocol::step`]
    /// (which is the only way engine users can reach `&mut self` anyway).
    fn is_done(&self) -> bool;
}

/// A staged point-to-point message: `(to, from, payload)`.
///
/// The payload is held in an `Option` so the engine can move messages out of
/// the staging buffer into the delivery arena without cloning or unsafe code;
/// entries reachable through the public API always carry `Some`.
pub(crate) type Staged<M> = (NodeId, NodeId, Option<M>);

/// A reusable buffer of staged sends, pooled across rounds by the engine.
///
/// Protocol steps append to it through [`RoundIo::send`] /
/// [`RoundIo::send_all`]; the engine (or a simulation wrapper using
/// [`RoundIo::detached`]) drains it afterwards.  Clearing keeps the backing
/// capacity, which is what makes steady-state rounds allocation-free.
#[derive(Debug)]
pub struct OutboxBuffer<M> {
    pub(crate) entries: Vec<Staged<M>>,
}

impl<M> OutboxBuffer<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        OutboxBuffer {
            entries: Vec::new(),
        }
    }

    /// Number of staged sends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no sends are staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all staged sends, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drains the staged sends as `(to, msg)` pairs, keeping the allocation.
    pub fn drain_sends(&mut self) -> impl Iterator<Item = (NodeId, M)> + '_ {
        self.entries
            .drain(..)
            .map(|(to, _, msg)| (to, msg.expect("staged message already taken")))
    }
}

impl<M> Default for OutboxBuffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-round input/output window handed to [`Protocol::step`].
#[derive(Debug)]
pub struct RoundIo<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) neighbors: Neighbors<'a>,
    pub(crate) inbox: &'a [(NodeId, M)],
    pub(crate) prev_slot: &'a SlotOutcome<M>,
    pub(crate) outbox: &'a mut OutboxBuffer<M>,
    pub(crate) channel_write: Option<M>,
}

impl<'a, M: Clone> RoundIo<'a, M> {
    /// Builds a detached `RoundIo`, outside of a [`SyncEngine`](crate::SyncEngine) run.
    ///
    /// This is the hook used by *simulation wrappers* such as the channel
    /// synchronizer of the paper's Section 7.1: the wrapper drives an
    /// existing synchronous [`Protocol`] round by round on a different
    /// substrate (e.g. an asynchronous engine) by constructing the round
    /// window itself and collecting the outputs.  The sends of the step land
    /// in `outbox` (drain them with [`OutboxBuffer::drain_sends`]); the
    /// channel write is returned by [`RoundIo::finish`].  Reusing one
    /// `OutboxBuffer` across rounds keeps the wrapper allocation-free too.
    pub fn detached(
        node: NodeId,
        round: u64,
        neighbors: Neighbors<'a>,
        inbox: &'a [(NodeId, M)],
        prev_slot: &'a SlotOutcome<M>,
        outbox: &'a mut OutboxBuffer<M>,
    ) -> Self {
        RoundIo {
            node,
            round,
            neighbors,
            inbox,
            prev_slot,
            outbox,
            channel_write: None,
        }
    }

    /// Consumes the window, returning the channel write requested during the
    /// step (the link sends are in the `OutboxBuffer` the window was built
    /// over).
    pub fn finish(self) -> Option<M> {
        self.channel_write
    }

    /// The identity of the executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current round number (first round is 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's incident links as a CSR [`Neighbors`] view (iterates
    /// `(neighbour, edge id)` pairs), in the graph's ascending
    /// edge-weight order.
    pub fn neighbors(&self) -> Neighbors<'a> {
        self.neighbors
    }

    /// Number of incident links.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages delivered this round (sent by neighbours in the previous
    /// round), ordered by the sender's node index.
    pub fn inbox(&self) -> &[(NodeId, M)] {
        self.inbox
    }

    /// Outcome of the previous channel slot, as heard by every node.
    ///
    /// In round 0 this is [`SlotOutcome::Idle`].
    pub fn prev_slot(&self) -> &SlotOutcome<M> {
        self.prev_slot
    }

    /// Sends `msg` to the neighbour `to` (delivered at the start of the next
    /// round).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this node: the point-to-point
    /// medium only connects adjacent processors.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        self.outbox.entries.push((to, self.node, Some(msg)));
    }

    /// Sends `msg` to every neighbour.
    pub fn send_all(&mut self, msg: M) {
        if let Some((&last, rest)) = self.neighbors.targets().split_last() {
            for &v in rest {
                self.outbox.entries.push((v, self.node, Some(msg.clone())));
            }
            self.outbox.entries.push((last, self.node, Some(msg)));
        }
    }

    /// Writes `msg` to the multiaccess channel in the current slot.
    ///
    /// If more than one node writes in the same slot, every node observes a
    /// collision in the next round.  Calling this twice in one round keeps
    /// only the last message (a node owns a single transmitter).
    pub fn write_channel(&mut self, msg: M) {
        self.channel_write = Some(msg);
    }

    /// Returns `true` if a channel write has been requested this round.
    pub fn will_write_channel(&self) -> bool {
        self.channel_write.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::EdgeId;

    const TARGETS: [NodeId; 2] = [NodeId(1), NodeId(2)];
    const EDGES: [EdgeId; 2] = [EdgeId(0), EdgeId(1)];

    fn make_io<'a>(
        neighbors: Neighbors<'a>,
        inbox: &'a [(NodeId, u32)],
        prev: &'a SlotOutcome<u32>,
        outbox: &'a mut OutboxBuffer<u32>,
    ) -> RoundIo<'a, u32> {
        RoundIo::detached(NodeId(0), 3, neighbors, inbox, prev, outbox)
    }

    #[test]
    fn accessors() {
        let inbox = [(NodeId(1), 9u32)];
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let io = make_io(Neighbors::new(&TARGETS, &EDGES), &inbox, &prev, &mut outbox);
        assert_eq!(io.id(), NodeId(0));
        assert_eq!(io.round(), 3);
        assert_eq!(io.degree(), 2);
        assert_eq!(io.inbox().len(), 1);
        assert!(io.prev_slot().is_idle());
        assert!(!io.will_write_channel());
        assert!(io.finish().is_none());
    }

    #[test]
    fn send_and_broadcast() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.send(NodeId(2), 5);
        io.send_all(7);
        io.write_channel(1);
        io.write_channel(2);
        assert!(io.will_write_channel());
        assert_eq!(io.finish(), Some(2));
        assert_eq!(outbox.len(), 3);
        let sends: Vec<(NodeId, u32)> = outbox.drain_sends().collect();
        assert_eq!(sends, vec![(NodeId(2), 5), (NodeId(1), 7), (NodeId(2), 7)]);
        assert!(outbox.is_empty());
    }

    #[test]
    fn outbox_is_reusable_across_rounds() {
        let targets = [NodeId(1)];
        let edges = [EdgeId(0)];
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        for round in 0..3u64 {
            let mut io = RoundIo::detached(
                NodeId(0),
                round,
                Neighbors::new(&targets, &edges),
                &[],
                &prev,
                &mut outbox,
            );
            io.send(NodeId(1), round as u32);
            assert!(io.finish().is_none());
            let sends: Vec<(NodeId, u32)> = outbox.drain_sends().collect();
            assert_eq!(sends, vec![(NodeId(1), round as u32)]);
        }
    }

    #[test]
    #[should_panic]
    fn send_to_non_neighbor_panics() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.send(NodeId(9), 1);
    }
}
