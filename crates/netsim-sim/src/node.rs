//! The per-processor protocol interface of the synchronous engine.
//!
//! A multimedia-network algorithm is written as a [`Protocol`] state machine.
//! In every round the engine calls [`Protocol::step`] exactly once per node;
//! the node observes the messages delivered to it (sent by its neighbours in
//! the previous round) and the outcome of the previous channel slot, and
//! decides which point-to-point messages to send and whether to write to the
//! channel in the current slot.  This is the model of Section 2 of the paper.

use crate::channel::SlotOutcome;
use netsim_graph::{EdgeId, NodeId};

/// A distributed algorithm, as executed by one processor.
pub trait Protocol {
    /// Message type carried both by the point-to-point links and the channel.
    ///
    /// The paper assumes messages of `O(log n)` bits plus one data element;
    /// protocol implementations should keep their messages within that spirit
    /// (ids, counters, one weight/value), but the engine does not enforce a
    /// bit bound.
    type Msg: Clone;

    /// Executes one round.
    ///
    /// Inputs (previous-round deliveries, previous slot outcome) and outputs
    /// (link sends, channel write) are exchanged through `io`.
    fn step(&mut self, io: &mut RoundIo<'_, Self::Msg>);

    /// Returns `true` once this node has terminated locally.
    ///
    /// The engine stops when every node is done and no messages are in flight.
    fn is_done(&self) -> bool;
}

/// Per-round input/output window handed to [`Protocol::step`].
#[derive(Debug)]
pub struct RoundIo<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) neighbors: &'a [(NodeId, EdgeId)],
    pub(crate) inbox: &'a [(NodeId, M)],
    pub(crate) prev_slot: &'a SlotOutcome<M>,
    pub(crate) outbox: Vec<(NodeId, M)>,
    pub(crate) channel_write: Option<M>,
}

impl<'a, M: Clone> RoundIo<'a, M> {
    /// Builds a detached `RoundIo`, outside of a [`SyncEngine`](crate::SyncEngine) run.
    ///
    /// This is the hook used by *simulation wrappers* such as the channel
    /// synchronizer of the paper's Section 7.1: the wrapper drives an
    /// existing synchronous [`Protocol`] round by round on a different
    /// substrate (e.g. an asynchronous engine) by constructing the round
    /// window itself and collecting the outputs with
    /// [`RoundIo::into_outputs`].
    pub fn detached(
        node: NodeId,
        round: u64,
        neighbors: &'a [(NodeId, EdgeId)],
        inbox: &'a [(NodeId, M)],
        prev_slot: &'a SlotOutcome<M>,
    ) -> Self {
        RoundIo {
            node,
            round,
            neighbors,
            inbox,
            prev_slot,
            outbox: Vec::new(),
            channel_write: None,
        }
    }

    /// Consumes the window, returning the link sends and the channel write
    /// requested during the step.
    pub fn into_outputs(self) -> (Vec<(NodeId, M)>, Option<M>) {
        (self.outbox, self.channel_write)
    }

    /// The identity of the executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current round number (first round is 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's incident links as `(neighbour, edge id)` pairs, in the
    /// graph's ascending edge-weight order.
    pub fn neighbors(&self) -> &[(NodeId, EdgeId)] {
        self.neighbors
    }

    /// Number of incident links.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages delivered this round (sent by neighbours in the previous round).
    pub fn inbox(&self) -> &[(NodeId, M)] {
        self.inbox
    }

    /// Outcome of the previous channel slot, as heard by every node.
    ///
    /// In round 0 this is [`SlotOutcome::Idle`].
    pub fn prev_slot(&self) -> &SlotOutcome<M> {
        self.prev_slot
    }

    /// Sends `msg` to the neighbour `to` (delivered at the start of the next
    /// round).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this node: the point-to-point
    /// medium only connects adjacent processors.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.iter().any(|&(v, _)| v == to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        self.outbox.push((to, msg));
    }

    /// Sends `msg` to every neighbour.
    pub fn send_all(&mut self, msg: M) {
        let targets: Vec<NodeId> = self.neighbors.iter().map(|&(v, _)| v).collect();
        for v in targets {
            self.outbox.push((v, msg.clone()));
        }
    }

    /// Writes `msg` to the multiaccess channel in the current slot.
    ///
    /// If more than one node writes in the same slot, every node observes a
    /// collision in the next round.  Calling this twice in one round keeps
    /// only the last message (a node owns a single transmitter).
    pub fn write_channel(&mut self, msg: M) {
        self.channel_write = Some(msg);
    }

    /// Returns `true` if a channel write has been requested this round.
    pub fn will_write_channel(&self) -> bool {
        self.channel_write.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_io<'a>(
        neighbors: &'a [(NodeId, EdgeId)],
        inbox: &'a [(NodeId, u32)],
        prev: &'a SlotOutcome<u32>,
    ) -> RoundIo<'a, u32> {
        RoundIo {
            node: NodeId(0),
            round: 3,
            neighbors,
            inbox,
            prev_slot: prev,
            outbox: Vec::new(),
            channel_write: None,
        }
    }

    #[test]
    fn accessors() {
        let neighbors = [(NodeId(1), EdgeId(0)), (NodeId(2), EdgeId(1))];
        let inbox = [(NodeId(1), 9u32)];
        let prev = SlotOutcome::Idle;
        let io = make_io(&neighbors, &inbox, &prev);
        assert_eq!(io.id(), NodeId(0));
        assert_eq!(io.round(), 3);
        assert_eq!(io.degree(), 2);
        assert_eq!(io.inbox().len(), 1);
        assert!(io.prev_slot().is_idle());
        assert!(!io.will_write_channel());
    }

    #[test]
    fn send_and_broadcast() {
        let neighbors = [(NodeId(1), EdgeId(0)), (NodeId(2), EdgeId(1))];
        let prev = SlotOutcome::Idle;
        let mut io = make_io(&neighbors, &[], &prev);
        io.send(NodeId(2), 5);
        io.send_all(7);
        assert_eq!(io.outbox.len(), 3);
        io.write_channel(1);
        io.write_channel(2);
        assert_eq!(io.channel_write, Some(2));
        assert!(io.will_write_channel());
    }

    #[test]
    #[should_panic]
    fn send_to_non_neighbor_panics() {
        let neighbors = [(NodeId(1), EdgeId(0))];
        let prev = SlotOutcome::Idle;
        let mut io = make_io(&neighbors, &[], &prev);
        io.send(NodeId(9), 1);
    }
}
