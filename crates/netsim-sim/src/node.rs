//! The per-processor protocol interface of the synchronous engine.
//!
//! A multimedia-network algorithm is written as a [`Protocol`] state machine.
//! In every round the engine calls [`Protocol::step`] exactly once per node;
//! the node observes the messages delivered to it (sent by its neighbours in
//! the previous round) and the outcome of the previous channel slot, and
//! decides which point-to-point messages to send and whether to write to the
//! channel in the current slot.  This is the model of Section 2 of the paper.
//!
//! Message plumbing is pooled **and arena-backed**: a step writes its sends
//! into a borrowed [`OutboxBuffer`] owned by the engine (or by the
//! simulation wrapper when using [`RoundIo::detached`]).  The buffer interns
//! each payload once into its [`PayloadArena`] and stages 4-byte
//! [`PayloadHandle`]s — a broadcast stores one payload however many
//! neighbours it reaches — so steady-state rounds perform no heap
//! allocation even for non-`Copy` message types (see the
//! [`payload`](crate::payload) module docs for the epoch discipline).
//! Deliveries are read back through the [`Inbox`] view, which yields
//! `(sender, &payload)` pairs whether the engine stores materialised
//! messages (the reference clone path) or arena handles (the flat engines).

use crate::channel::{ChannelId, ChannelOutcome, LaneOutcome, SlotOutcome};
use crate::payload::{PayloadArena, PayloadHandle};
use netsim_graph::{Neighbors, NodeId};

/// A distributed algorithm, as executed by one processor.
pub trait Protocol {
    /// Message type carried both by the point-to-point links and the channel.
    ///
    /// The paper assumes messages of `O(log n)` bits plus one data element;
    /// protocol implementations should keep their messages within that spirit
    /// (ids, counters, one weight/value), but the engine does not enforce a
    /// bit bound — variable-length multimedia frames (`Vec<u8>` and friends)
    /// are first-class citizens of the arena-backed delivery path.
    type Msg: Clone;

    /// Executes one round.
    ///
    /// Inputs (previous-round deliveries, previous slot outcome) and outputs
    /// (link sends, channel write) are exchanged through `io`.
    fn step(&mut self, io: &mut RoundIo<'_, Self::Msg>);

    /// Returns `true` once this node has terminated locally.
    ///
    /// The engine stops when every node is done and no messages are in
    /// flight.  For the engine's O(1) quiescence tracking to be sound, the
    /// value returned must only change as a result of [`Protocol::step`]
    /// (which is the only way engine users can reach `&mut self` anyway) —
    /// or of [`Protocol::on_recover`], which the engines invoke themselves
    /// and account for.
    fn is_done(&self) -> bool;

    /// Re-initialisation hook fired when a crashed node starts recovering
    /// (the `Crashed → Booting` transition of a
    /// [`FaultPlan`](crate::FaultPlan)'s node lifecycle; see the
    /// [`fault`](crate::fault) module docs).  The node steps again from the
    /// *next* round on; whatever state the crash left behind is whatever
    /// `step` last produced, and this hook is the node's one chance to
    /// re-initialise before rejoining.  The default does nothing (the node
    /// resumes with its pre-crash state).
    fn on_recover(&mut self) {}
}

/// A staged point-to-point message: `(to, from, payload handle)`.
///
/// The payload itself lives in the staging [`PayloadArena`]; the triple is
/// `Copy`, so the engine's bucketing passes move 20-byte records regardless
/// of the message type.
pub(crate) type Staged = (NodeId, NodeId, PayloadHandle);

/// A reusable buffer of staged sends plus the arena their payloads are
/// interned in, pooled across rounds by the engine.
///
/// Protocol steps append to it through [`RoundIo::send`] /
/// [`RoundIo::send_all`]; the engine (or a simulation wrapper using
/// [`RoundIo::detached`]) drains it afterwards.  Clearing keeps the backing
/// capacity — of the entry vector and of the payload slab — which is what
/// makes steady-state rounds allocation-free.
#[derive(Debug)]
pub struct OutboxBuffer<M> {
    pub(crate) entries: Vec<Staged>,
    pub(crate) arena: PayloadArena<M>,
    /// Channel writes staged this round as `(channel, writer, payload
    /// handle)` triples; the payloads are interned in `arena` next to the
    /// point-to-point ones, which is what lets the flat engines deliver slot
    /// winners by handle instead of cloning them.
    pub(crate) chan_writes: Vec<(ChannelId, NodeId, PayloadHandle)>,
    /// Lane words staged this round as `(channel, writer, word)` triples.
    /// Lane payloads are bare `u64`s (see
    /// [`LaneOutcome`](crate::LaneOutcome)), so they bypass the arena
    /// entirely; same-node same-channel writes are OR-merged at staging
    /// time, keeping at most one entry per `(node, channel)`.
    pub(crate) lane_writes: Vec<(ChannelId, NodeId, u64)>,
    /// Self-scheduled wakeups requested through [`RoundIo::wake_me`]: nodes
    /// asking to be on the next round's activity frontier.  Engines running
    /// dense ignore (and clear) them; the sparse stepping mode folds them
    /// into the frontier.
    pub(crate) wakes: Vec<NodeId>,
}

impl<M> OutboxBuffer<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        OutboxBuffer {
            entries: Vec::new(),
            arena: PayloadArena::new(),
            chan_writes: Vec::new(),
            lane_writes: Vec::new(),
            wakes: Vec::new(),
        }
    }

    /// Number of staged sends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no sends are staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all staged sends and channel writes and expires their payload
    /// epoch, keeping every allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.chan_writes.clear();
        self.lane_writes.clear();
        self.wakes.clear();
        self.arena.expire();
    }

    /// Moves every wakeup requested through [`RoundIo::wake_me`] out of the
    /// buffer, in request order. Simulation wrappers (the async lockstep
    /// adapter) forward these onto their own wakeup substrate.
    pub fn take_wakes(&mut self, mut f: impl FnMut(NodeId)) {
        for v in self.wakes.drain(..) {
            f(v);
        }
    }

    /// Returns `true` when at least one channel write is staged.
    pub fn has_channel_writes(&self) -> bool {
        !self.chan_writes.is_empty()
    }

    /// Moves every staged channel write out as `(channel, writer, message)`,
    /// in staging order, leaving the point-to-point sends untouched.
    ///
    /// Simulation wrappers (the async lockstep adapter, the reference
    /// engine) use this to forward writes onto their own substrate; it must
    /// run **before** [`OutboxBuffer::drain_sends`], whose completion retires
    /// the payload epoch the write handles point into.
    pub fn take_channel_writes(&mut self, mut f: impl FnMut(ChannelId, NodeId, M)) {
        let OutboxBuffer {
            chan_writes, arena, ..
        } = self;
        for (chan, from, h) in chan_writes.drain(..) {
            f(chan, from, arena.take(h));
        }
    }

    /// Returns `true` when at least one lane write is staged.
    pub fn has_lane_writes(&self) -> bool {
        !self.lane_writes.is_empty()
    }

    /// Moves every staged lane write out as `(channel, writer, word)`, in
    /// staging order (at most one entry per node and channel — same-node
    /// repeats were OR-merged at staging time).  Simulation wrappers (the
    /// async lockstep adapter, the reference engine, the wire backend) use
    /// this to forward lane words onto their own substrate.
    pub fn take_lane_writes(&mut self, mut f: impl FnMut(ChannelId, NodeId, u64)) {
        for (chan, from, word) in self.lane_writes.drain(..) {
            f(chan, from, word);
        }
    }

    /// The staging payload arena (interned payloads of the current epoch).
    pub fn arena(&self) -> &PayloadArena<M> {
        &self.arena
    }

    /// Drains the staged sends as owned `(to, msg)` pairs, reproducing the
    /// seed's pre-arena clone path exactly: a payload is **cloned** while
    /// later entries still share its handle and **moved** out of the arena
    /// on its last use — so a unicast costs no clone and a degree-`d`
    /// broadcast costs `d - 1`, just as when the seed cloned in `send_all`
    /// and moved through the staging buffer.  The
    /// [`ReferenceEngine`](crate::ReferenceEngine) and detached simulation
    /// wrappers use this; the flat engines move handles instead and never
    /// clone.  When the iterator is dropped the payload epoch expires, so
    /// the buffer is immediately reusable (and heap payloads become
    /// recyclable).
    pub fn drain_sends(&mut self) -> DrainSends<'_, M>
    where
        M: Clone,
    {
        debug_assert!(
            self.chan_writes.is_empty(),
            "take_channel_writes must run before draining the sends: the \
             drain retires the payload epoch the staged channel writes point \
             into"
        );
        let OutboxBuffer { entries, arena, .. } = self;
        DrainSends {
            entries: entries.drain(..),
            arena,
        }
    }

    /// Visits the staged sends as `(to, &payload)` pairs in send order
    /// **without cloning**, then clears the buffer and retires the payload
    /// epoch (heap payloads become recyclable).
    ///
    /// Simulation wrappers that re-wrap payloads into their own message type
    /// use this to clone into *recycled* storage instead of paying a fresh
    /// allocation per send (see the channel synchronizer).
    pub fn drain_sends_by_ref(&mut self, mut f: impl FnMut(NodeId, &M)) {
        debug_assert!(
            self.chan_writes.is_empty(),
            "take_channel_writes must run before draining the sends: the \
             drain retires the payload epoch the staged channel writes point \
             into"
        );
        let OutboxBuffer { entries, arena, .. } = self;
        for (to, _, h) in entries.drain(..) {
            f(to, arena.get(h));
        }
        arena.expire();
    }
}

impl<M> Default for OutboxBuffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Draining iterator returned by [`OutboxBuffer::drain_sends`].
#[derive(Debug)]
pub struct DrainSends<'a, M> {
    entries: std::vec::Drain<'a, Staged>,
    arena: &'a mut PayloadArena<M>,
}

impl<'a, M: Clone> Iterator for DrainSends<'a, M> {
    type Item = (NodeId, M);

    fn next(&mut self) -> Option<(NodeId, M)> {
        let (to, _, h) = self.entries.next()?;
        // A handle's staged entries are contiguous (one `send` / `send_all`
        // call at a time appends them), so this entry is the payload's last
        // use exactly when the next entry carries a different handle — clone
        // for shared earlier uses, move on the last.
        let shared_ahead = self
            .entries
            .as_slice()
            .first()
            .is_some_and(|&(_, _, ahead)| ahead == h);
        let msg = if shared_ahead {
            self.arena.get(h).clone()
        } else {
            self.arena.take(h)
        };
        Some((to, msg))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.entries.size_hint()
    }
}

impl<'a, M> Drop for DrainSends<'a, M> {
    fn drop(&mut self) {
        // End of the staging epoch: undrained entries are discarded by the
        // inner `Drain`, and every payload is retired (heap payloads move to
        // the graveyard for recycling).
        self.arena.expire();
    }
}

/// Read-only view of one node's deliveries for the current round, yielding
/// `(sender, &payload)` pairs ordered by the sender's node index.
///
/// The two variants correspond to the two delivery substrates: materialised
/// `(from, msg)` pairs (reference engine, detached wrappers) and arena
/// handles resolved against a [`PayloadArena`] (the flat engines).  Protocol
/// code cannot tell them apart — which is precisely what the
/// `engine_conformance` suite checks.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    entries: InboxEntries<'a, M>,
}

#[derive(Debug)]
enum InboxEntries<'a, M> {
    /// Materialised messages (one owned `M` per delivery).
    Direct(&'a [(NodeId, M)]),
    /// Arena handles (one interned `M` per *send*, shared by broadcasts).
    Arena {
        entries: &'a [(NodeId, PayloadHandle)],
        payloads: &'a PayloadArena<M>,
    },
}

impl<'a, M> Clone for Inbox<'a, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, M> Copy for Inbox<'a, M> {}
impl<'a, M> Clone for InboxEntries<'a, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, M> Copy for InboxEntries<'a, M> {}

impl<'a, M> Inbox<'a, M> {
    /// A view over materialised `(sender, message)` pairs; the constructor
    /// used by detached simulation wrappers and the reference engine.
    pub fn direct(entries: &'a [(NodeId, M)]) -> Self {
        Inbox {
            entries: InboxEntries::Direct(entries),
        }
    }

    /// A view over arena handles; used by the flat engines.
    pub(crate) fn arena(
        entries: &'a [(NodeId, PayloadHandle)],
        payloads: &'a PayloadArena<M>,
    ) -> Self {
        Inbox {
            entries: InboxEntries::Arena { entries, payloads },
        }
    }

    /// An empty inbox.
    pub fn empty() -> Self {
        Inbox {
            entries: InboxEntries::Direct(&[]),
        }
    }

    /// Number of messages delivered this round.
    pub fn len(&self) -> usize {
        match self.entries {
            InboxEntries::Direct(s) => s.len(),
            InboxEntries::Arena { entries, .. } => entries.len(),
        }
    }

    /// `true` when nothing was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th delivery (senders ascending), if any.
    pub fn get(&self, i: usize) -> Option<(NodeId, &'a M)> {
        match self.entries {
            InboxEntries::Direct(s) => s.get(i).map(|(from, m)| (*from, m)),
            InboxEntries::Arena { entries, payloads } => {
                entries.get(i).map(|&(from, h)| (from, payloads.get(h)))
            }
        }
    }

    /// The first delivery, if any.
    pub fn first(&self) -> Option<(NodeId, &'a M)> {
        self.get(0)
    }

    /// Iterates the deliveries as `(sender, &payload)` pairs, ordered by
    /// sender node index (then send order within one sender).
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            entries: self.entries,
            next: 0,
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`], yielding `(sender, &payload)` pairs.
#[derive(Clone, Debug)]
pub struct InboxIter<'a, M> {
    entries: InboxEntries<'a, M>,
    next: usize,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (NodeId, &'a M);

    fn next(&mut self) -> Option<(NodeId, &'a M)> {
        let i = self.next;
        let item = match self.entries {
            InboxEntries::Direct(s) => s.get(i).map(|(from, m)| (*from, m)),
            InboxEntries::Arena { entries, payloads } => {
                entries.get(i).map(|&(from, h)| (from, payloads.get(h)))
            }
        };
        if item.is_some() {
            self.next = i + 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.entries {
            InboxEntries::Direct(s) => s.len().saturating_sub(self.next),
            InboxEntries::Arena { entries, .. } => entries.len().saturating_sub(self.next),
        };
        (remaining, Some(remaining))
    }
}

impl<'a, M> ExactSizeIterator for InboxIter<'a, M> {}

/// Read-only view of the previous round's per-channel slot outcomes, the
/// slot-side sibling of [`Inbox`]: materialised outcomes (reference engine,
/// detached wrappers) or handle-based outcomes resolved against the delivery
/// [`PayloadArena`] (the flat engines — where a slot winner is therefore
/// delivered without ever being cloned).
#[derive(Debug)]
pub(crate) enum Slots<'a, M> {
    /// One owned [`SlotOutcome`] per channel.
    Direct(&'a [SlotOutcome<M>]),
    /// One [`ChannelOutcome`] per channel, winners resolved in `payloads`.
    Arena {
        outcomes: &'a [ChannelOutcome],
        payloads: &'a PayloadArena<M>,
    },
}

impl<'a, M> Clone for Slots<'a, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, M> Copy for Slots<'a, M> {}

impl<'a, M> Slots<'a, M> {
    fn len(&self) -> usize {
        match self {
            Slots::Direct(s) => s.len(),
            Slots::Arena { outcomes, .. } => outcomes.len(),
        }
    }

    fn get(&self, c: usize) -> SlotOutcome<&'a M> {
        match *self {
            Slots::Direct(s) => match &s[c] {
                SlotOutcome::Idle => SlotOutcome::Idle,
                SlotOutcome::Success { from, msg } => SlotOutcome::Success { from: *from, msg },
                SlotOutcome::Collision => SlotOutcome::Collision,
                SlotOutcome::Erased => SlotOutcome::Erased,
            },
            Slots::Arena { outcomes, payloads } => match outcomes[c] {
                ChannelOutcome::Idle => SlotOutcome::Idle,
                ChannelOutcome::Success { from, handle } => SlotOutcome::Success {
                    from,
                    msg: payloads.get(handle),
                },
                ChannelOutcome::Collision => SlotOutcome::Collision,
                ChannelOutcome::Erased => SlotOutcome::Erased,
            },
        }
    }
}

/// Per-round input/output window handed to [`Protocol::step`].
#[derive(Debug)]
pub struct RoundIo<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) neighbors: Neighbors<'a>,
    pub(crate) inbox: Inbox<'a, M>,
    /// Previous round's outcome of every channel of the set.
    pub(crate) slots: Slots<'a, M>,
    /// Previous round's lane sub-slot outcome of every channel; an empty
    /// slice (the detached default) reads as all-[`LaneOutcome::Idle`].
    pub(crate) lanes: &'a [LaneOutcome],
    /// Bitmask of the channels this node is attached to.
    pub(crate) attached: u64,
    pub(crate) outbox: &'a mut OutboxBuffer<M>,
}

impl<'a, M: Clone> RoundIo<'a, M> {
    /// Builds a detached single-channel `RoundIo`, outside of a
    /// [`SyncEngine`](crate::SyncEngine) run.
    ///
    /// This is the hook used by *simulation wrappers* such as the channel
    /// synchronizer of the paper's Section 7.1: the wrapper drives an
    /// existing synchronous [`Protocol`] round by round on a different
    /// substrate (e.g. an asynchronous engine) by constructing the round
    /// window itself and collecting the outputs.  The sends of the step land
    /// in `outbox` (drain them with [`OutboxBuffer::drain_sends`]); the
    /// channel write is returned by [`RoundIo::finish`].  Reusing one
    /// `OutboxBuffer` across rounds keeps the wrapper allocation-free too.
    /// Multi-channel wrappers use [`RoundIo::detached_multi`] instead.
    pub fn detached(
        node: NodeId,
        round: u64,
        neighbors: Neighbors<'a>,
        inbox: Inbox<'a, M>,
        prev_slot: &'a SlotOutcome<M>,
        outbox: &'a mut OutboxBuffer<M>,
    ) -> Self {
        RoundIo::detached_multi(
            node,
            round,
            neighbors,
            inbox,
            std::slice::from_ref(prev_slot),
            outbox,
        )
    }

    /// Builds a detached `RoundIo` over a `K`-channel set, with one
    /// materialised [`SlotOutcome`] per channel.  By default the node is
    /// attached to every channel of the slice; chain
    /// [`RoundIo::with_attachment`] to replay a sharded attachment.  Collect
    /// the writes afterwards with [`OutboxBuffer::take_channel_writes`] —
    /// before draining the sends.
    pub fn detached_multi(
        node: NodeId,
        round: u64,
        neighbors: Neighbors<'a>,
        inbox: Inbox<'a, M>,
        prev_slots: &'a [SlotOutcome<M>],
        outbox: &'a mut OutboxBuffer<M>,
    ) -> Self {
        let k = prev_slots.len();
        assert!(
            (1..=crate::channel::MAX_CHANNELS as usize).contains(&k),
            "detached RoundIo needs 1..=64 channel outcomes, got {k}"
        );
        RoundIo {
            node,
            round,
            neighbors,
            inbox,
            slots: Slots::Direct(prev_slots),
            lanes: &[],
            attached: crate::channel::ChannelSet::full_mask(k as u16),
            outbox,
        }
    }

    /// Attaches the previous round's per-channel lane outcomes to a detached
    /// window (the default is all-idle).  Wrappers replaying lane-writing
    /// protocols (the async lockstep adapter) chain this so
    /// [`RoundIo::prev_lanes_on`] observes the real sub-slot feedback.
    ///
    /// # Panics
    ///
    /// Panics unless the slice covers exactly the window's channel count.
    pub fn with_lanes(mut self, lanes: &'a [LaneOutcome]) -> Self {
        assert_eq!(
            lanes.len(),
            self.slots.len(),
            "lane outcomes cover {} channels, window has {}",
            lanes.len(),
            self.slots.len()
        );
        self.lanes = lanes;
        self
    }

    /// Restricts a detached window to an explicit attachment bitmask, so
    /// wrappers replaying a sharded [`ChannelSet`](crate::ChannelSet) gate
    /// [`RoundIo::is_attached`] / [`RoundIo::write_channel_on`] exactly as
    /// the engines do (the async lockstep conformance adapter uses this).
    ///
    /// # Panics
    ///
    /// Panics if the mask addresses a channel outside the window's slot
    /// slice.
    pub fn with_attachment(mut self, mask: u64) -> Self {
        let k = self.slots.len();
        let full = crate::channel::ChannelSet::full_mask(k as u16);
        assert!(
            mask & !full == 0,
            "attachment mask {mask:#x} addresses channels >= {k}"
        );
        self.attached = mask;
        self
    }

    /// Consumes the window, returning the write staged on the **default**
    /// channel during the step (the link sends are in the `OutboxBuffer` the
    /// window was built over; writes on other channels stay staged for
    /// [`OutboxBuffer::take_channel_writes`]).
    pub fn finish(self) -> Option<M> {
        let pos = self
            .outbox
            .chan_writes
            .iter()
            .position(|&(chan, from, _)| chan == ChannelId::DEFAULT && from == self.node)?;
        let (_, _, h) = self.outbox.chan_writes.remove(pos);
        Some(self.outbox.arena.take(h))
    }

    /// The identity of the executing node.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current round number (first round is 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's incident links as a CSR [`Neighbors`] view (iterates
    /// `(neighbour, edge id)` pairs), in the graph's ascending
    /// edge-weight order.
    pub fn neighbors(&self) -> Neighbors<'a> {
        self.neighbors
    }

    /// Number of incident links.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages delivered this round (sent by neighbours in the previous
    /// round), as an [`Inbox`] view ordered by the sender's node index.
    pub fn inbox(&self) -> Inbox<'a, M> {
        self.inbox
    }

    /// Outcome of the previous slot of the **default** channel
    /// ([`ChannelId::DEFAULT`]), as heard by every attached node; sugar for
    /// [`RoundIo::prev_slot_on`].
    ///
    /// In round 0 this is [`SlotOutcome::Idle`].
    pub fn prev_slot(&self) -> SlotOutcome<&'a M> {
        self.prev_slot_on(ChannelId::DEFAULT)
    }

    /// Outcome of the previous slot of channel `chan`.
    ///
    /// The winning message is borrowed from wherever the substrate keeps it:
    /// the round's delivery [`PayloadArena`] on the flat engines (the winner
    /// is delivered *by handle*, never cloned) or a materialised outcome on
    /// the clone-path reference engine and detached wrappers.  A node that
    /// is not attached to `chan` observes [`SlotOutcome::Idle`].
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's
    /// [`ChannelSet`](crate::ChannelSet).
    pub fn prev_slot_on(&self, chan: ChannelId) -> SlotOutcome<&'a M> {
        let c = chan.index();
        assert!(
            c < self.slots.len(),
            "{:?} read {chan:?} of a {}-channel set",
            self.node,
            self.slots.len()
        );
        if self.attached & (1 << c) == 0 {
            return SlotOutcome::Idle;
        }
        self.slots.get(c)
    }

    /// Outcome of the previous round's **lane sub-slot** of channel `chan`
    /// (see [`LaneOutcome`]): the OR of every word staged there through
    /// [`RoundIo::write_lanes_on`], independent of the channel's message
    /// slot.  A node that is not attached to `chan` observes
    /// [`LaneOutcome::Idle`]; in round 0 every channel reads idle.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's
    /// [`ChannelSet`](crate::ChannelSet).
    pub fn prev_lanes_on(&self, chan: ChannelId) -> LaneOutcome {
        let c = chan.index();
        assert!(
            c < self.slots.len(),
            "{:?} read lanes on {chan:?} of a {}-channel set",
            self.node,
            self.slots.len()
        );
        if self.attached & (1 << c) == 0 {
            return LaneOutcome::Idle;
        }
        self.lanes.get(c).copied().unwrap_or(LaneOutcome::Idle)
    }

    /// Number of channels `K` of the engine's [`ChannelSet`](crate::ChannelSet).
    pub fn channels(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Returns `true` when this node is attached to channel `chan` (may both
    /// write to it and hear its outcomes).
    pub fn is_attached(&self, chan: ChannelId) -> bool {
        chan.index() < self.slots.len() && self.attached & (1 << chan.index()) != 0
    }

    /// Takes a dead payload from the staging arena for reuse, if one is
    /// available.
    ///
    /// Heap-carrying protocols (`Vec<u8>` frames and the like) overwrite the
    /// returned value in place and pass it back to [`RoundIo::send`] /
    /// [`RoundIo::send_all`], closing the allocation loop: after warm-up the
    /// payload buffers of round `r` become the payload buffers of round
    /// `r + 2` (the arena pair swaps roles every round).  Returns `None` for
    /// payload types without heap storage and while the graveyard is empty.
    pub fn recycle_payload(&mut self) -> Option<M> {
        self.outbox.arena.recycle()
    }

    /// Sends `msg` to the neighbour `to` (delivered at the start of the next
    /// round).
    ///
    /// The payload is interned into the staging arena and staged as a
    /// handle; nothing is cloned.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour of this node: the point-to-point
    /// medium only connects adjacent processors.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(to),
            "{:?} attempted to send to non-neighbour {:?}",
            self.node,
            to
        );
        let h = self.outbox.arena.intern(msg);
        self.outbox.entries.push((to, self.node, h));
    }

    /// Sends `msg` to every neighbour.
    ///
    /// Intern-on-broadcast: the payload is stored **once** and every
    /// neighbour's delivery entry shares the handle, so a degree-`d`
    /// broadcast costs one payload move plus `d` staged 20-byte records —
    /// not `d` clones.
    pub fn send_all(&mut self, msg: M) {
        let targets = self.neighbors.targets();
        if targets.is_empty() {
            return;
        }
        let h = self.outbox.arena.intern(msg);
        for &v in targets {
            self.outbox.entries.push((v, self.node, h));
        }
    }

    /// Writes `msg` to the **default** channel ([`ChannelId::DEFAULT`]) in
    /// the current slot; sugar for [`RoundIo::write_channel_on`].
    pub fn write_channel(&mut self, msg: M) {
        self.write_channel_on(ChannelId::DEFAULT, msg);
    }

    /// Writes `msg` to channel `chan` in the current slot.
    ///
    /// If more than one attached node writes to the same channel in the same
    /// slot, every attached node observes a collision on it in the next
    /// round.  Writing twice to one channel in one round keeps only the last
    /// message (a node owns a single transmitter per channel).  The payload
    /// is interned into the staging arena — on the flat engines the winner
    /// is later delivered by handle, without a clone.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's
    /// [`ChannelSet`](crate::ChannelSet) or this node is not attached to it:
    /// a node can only key a transmitter it owns.
    pub fn write_channel_on(&mut self, chan: ChannelId, msg: M) {
        assert!(
            chan.index() < self.slots.len(),
            "{:?} wrote to {chan:?} of a {}-channel set",
            self.node,
            self.slots.len()
        );
        assert!(
            self.attached & (1 << chan.index()) != 0,
            "{:?} attempted to write to unattached {chan:?}",
            self.node
        );
        let h = self.outbox.arena.intern(msg);
        // Last-write-wins per channel: this node's staged writes are the
        // contiguous tail of the buffer (one node steps at a time), so a
        // short reverse scan finds an earlier write to the same channel.
        // The replaced payload stays interned and simply expires with the
        // epoch, exactly like an undelivered send.
        let node = self.node;
        let earlier = self
            .outbox
            .chan_writes
            .iter_mut()
            .rev()
            .take_while(|&&mut (_, from, _)| from == node)
            .find(|&&mut (c, _, _)| c == chan);
        match earlier {
            Some(entry) => entry.2 = h,
            None => self.outbox.chan_writes.push((chan, node, h)),
        }
    }

    /// Writes `word` to channel `chan`'s **lane sub-slot** in the current
    /// round.  All words staged on one channel resolve by bitwise OR into a
    /// single [`LaneOutcome::Word`] every attached node observes next round
    /// — there is no collision, which is what lets 64 concurrent bitwise
    /// elections share one channel (one bit lane each; see
    /// `channel_access::LaneElectionSeries`).  Writing twice in one round
    /// ORs into the earlier word (one transmitter per channel, but bits
    /// merge, unlike the message slot's last-write-wins).
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's
    /// [`ChannelSet`](crate::ChannelSet) or this node is not attached to it.
    pub fn write_lanes_on(&mut self, chan: ChannelId, word: u64) {
        assert!(
            chan.index() < self.slots.len(),
            "{:?} wrote lanes on {chan:?} of a {}-channel set",
            self.node,
            self.slots.len()
        );
        assert!(
            self.attached & (1 << chan.index()) != 0,
            "{:?} attempted to write lanes on unattached {chan:?}",
            self.node
        );
        // OR-merge per channel: this node's staged lane writes are the
        // contiguous tail of the buffer (one node steps at a time), so a
        // short reverse scan finds an earlier write to the same channel.
        let node = self.node;
        let earlier = self
            .outbox
            .lane_writes
            .iter_mut()
            .rev()
            .take_while(|&&mut (_, from, _)| from == node)
            .find(|&&mut (c, _, _)| c == chan);
        match earlier {
            Some(entry) => entry.2 |= word,
            None => self.outbox.lane_writes.push((chan, node, word)),
        }
    }

    /// Schedules this node onto the **next round's activity frontier**.
    ///
    /// Under dense stepping every node steps every round and this is a no-op.
    /// Under sparse (active-set) stepping an idle node — empty inbox, every
    /// attached slot `Idle`, no lifecycle transition — is *not stepped at
    /// all*, so a protocol that advances internal timers on idle observations
    /// (idle-strike counters, phase arming) must call `wake_me` before
    /// returning from [`Protocol::step`] whenever it still wants to run next
    /// round. The canonical adoption pattern is:
    ///
    /// ```ignore
    /// fn step(&mut self, io: &mut RoundIo<'_, Msg>) {
    ///     // ... protocol logic ...
    ///     if !self.is_done() {
    ///         io.wake_me();
    ///     }
    /// }
    /// ```
    ///
    /// # Determinism contract
    ///
    /// Wakeup rounds are part of the determinism tuple: the set of rounds in
    /// which a node steps is `(messages received, non-idle attached slots,
    /// lifecycle transitions, wake_me requests)`, and two runs agree
    /// bit-for-bit only if the protocol requests the same wakeups in the
    /// same rounds. `wake_me` must therefore be a pure function of the
    /// node's observable state, like every other [`Protocol::step`] output.
    ///
    /// # Quiescence
    ///
    /// `wake_me` does **not** prevent quiescence. The engine's termination
    /// check is unchanged by sparse stepping (all nodes done or exempt, no
    /// messages in flight, all slots idle); a node that needs more rounds
    /// must report `!is_done()`, not merely keep waking itself.
    pub fn wake_me(&mut self) {
        self.outbox.wakes.push(self.node);
    }

    /// Returns `true` if this node has staged a write on any channel this
    /// round.
    pub fn will_write_channel(&self) -> bool {
        // This node's writes are the contiguous tail of the staging buffer,
        // so it wrote something iff the last entry is its own.
        self.outbox
            .chan_writes
            .last()
            .is_some_and(|&(_, from, _)| from == self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::EdgeId;

    const TARGETS: [NodeId; 2] = [NodeId(1), NodeId(2)];
    const EDGES: [EdgeId; 2] = [EdgeId(0), EdgeId(1)];

    fn make_io<'a>(
        neighbors: Neighbors<'a>,
        inbox: &'a [(NodeId, u32)],
        prev: &'a SlotOutcome<u32>,
        outbox: &'a mut OutboxBuffer<u32>,
    ) -> RoundIo<'a, u32> {
        RoundIo::detached(NodeId(0), 3, neighbors, Inbox::direct(inbox), prev, outbox)
    }

    #[test]
    fn accessors() {
        let inbox = [(NodeId(1), 9u32)];
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let io = make_io(Neighbors::new(&TARGETS, &EDGES), &inbox, &prev, &mut outbox);
        assert_eq!(io.id(), NodeId(0));
        assert_eq!(io.round(), 3);
        assert_eq!(io.degree(), 2);
        assert_eq!(io.inbox().len(), 1);
        assert_eq!(io.inbox().first(), Some((NodeId(1), &9)));
        assert!(io.prev_slot().is_idle());
        assert!(!io.will_write_channel());
        assert!(io.finish().is_none());
    }

    #[test]
    fn send_and_broadcast() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.send(NodeId(2), 5);
        io.send_all(7);
        io.write_channel(1);
        io.write_channel(2);
        assert!(io.will_write_channel());
        assert_eq!(io.finish(), Some(2));
        assert!(!outbox.has_channel_writes(), "finish consumed the write");
        assert_eq!(outbox.len(), 3);
        // The broadcast interned one payload shared by both entries; the two
        // channel writes interned one payload each (the overwritten first
        // write stays interned until the epoch expires, like the seed
        // dropping a replaced `Option` write).
        assert_eq!(outbox.arena().live(), 4);
        let sends: Vec<(NodeId, u32)> = outbox.drain_sends().collect();
        assert_eq!(sends, vec![(NodeId(2), 5), (NodeId(1), 7), (NodeId(2), 7)]);
        assert!(outbox.is_empty());
        assert!(outbox.arena().is_empty());
    }

    #[test]
    fn outbox_is_reusable_across_rounds() {
        let targets = [NodeId(1)];
        let edges = [EdgeId(0)];
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        for round in 0..3u64 {
            let mut io = RoundIo::detached(
                NodeId(0),
                round,
                Neighbors::new(&targets, &edges),
                Inbox::empty(),
                &prev,
                &mut outbox,
            );
            io.send(NodeId(1), round as u32);
            assert!(io.finish().is_none());
            let sends: Vec<(NodeId, u32)> = outbox.drain_sends().collect();
            assert_eq!(sends, vec![(NodeId(1), round as u32)]);
        }
    }

    #[test]
    fn recycle_hands_back_heap_payloads() {
        // `drain_sends_by_ref` leaves the interned payloads in the arena, so
        // expiry parks them for `recycle_payload` (the synchronizer's loop);
        // the moving `drain_sends` transfers ownership out instead — exactly
        // the seed semantics — leaving nothing to recycle.
        let targets = [NodeId(1)];
        let edges = [EdgeId(0)];
        let prev: SlotOutcome<Vec<u8>> = SlotOutcome::Idle;
        let mut outbox: OutboxBuffer<Vec<u8>> = OutboxBuffer::new();
        for round in 0..4u64 {
            let mut io = RoundIo::detached(
                NodeId(0),
                round,
                Neighbors::new(&targets, &edges),
                Inbox::empty(),
                &prev,
                &mut outbox,
            );
            let mut frame = io.recycle_payload().unwrap_or_default();
            if round >= 1 {
                assert!(frame.capacity() >= 64, "capacity must be recycled");
            }
            frame.clear();
            frame.resize(64, round as u8);
            io.send(NodeId(1), frame);
            let mut sends: Vec<(NodeId, Vec<u8>)> = Vec::new();
            outbox.drain_sends_by_ref(|to, msg| sends.push((to, msg.clone())));
            assert_eq!(sends.len(), 1);
            assert_eq!(sends[0].1, vec![round as u8; 64]);
        }
    }

    #[test]
    fn drain_sends_moves_on_last_use() {
        // Seed clone-path parity: a unicast payload is moved (no clone), a
        // degree-d broadcast is cloned d - 1 times with the interned
        // original moved on its last entry — afterwards the arena holds
        // nothing recyclable.
        let prev: SlotOutcome<Vec<u8>> = SlotOutcome::Idle;
        let mut outbox: OutboxBuffer<Vec<u8>> = OutboxBuffer::new();
        let mut io = make_vec_io(&prev, &mut outbox);
        io.send(NodeId(1), vec![7; 32]);
        io.send_all(vec![8; 32]);
        let sends: Vec<(NodeId, Vec<u8>)> = outbox.drain_sends().collect();
        assert_eq!(sends.len(), 3);
        assert_eq!(sends[0], (NodeId(1), vec![7; 32]));
        assert_eq!(sends[1], (NodeId(1), vec![8; 32]));
        assert_eq!(sends[2], (NodeId(2), vec![8; 32]));
        let mut outbox2: OutboxBuffer<Vec<u8>> = OutboxBuffer::new();
        std::mem::swap(&mut outbox, &mut outbox2);
        assert_eq!(
            outbox2.arena.recycle(),
            None,
            "moved-out payloads must not reach the graveyard"
        );
    }

    fn make_vec_io<'a>(
        prev: &'a SlotOutcome<Vec<u8>>,
        outbox: &'a mut OutboxBuffer<Vec<u8>>,
    ) -> RoundIo<'a, Vec<u8>> {
        RoundIo::detached(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            prev,
            outbox,
        )
    }

    #[test]
    fn inbox_views_are_equivalent() {
        let direct = [(NodeId(1), 10u32), (NodeId(4), 20)];
        let mut arena = PayloadArena::new();
        let h1 = arena.intern(10u32);
        let h2 = arena.intern(20u32);
        let entries = [(NodeId(1), h1), (NodeId(4), h2)];
        let a = Inbox::direct(&direct);
        let b = Inbox::arena(&entries, &arena);
        assert_eq!(a.len(), b.len());
        let va: Vec<(NodeId, u32)> = a.iter().map(|(f, &m)| (f, m)).collect();
        let vb: Vec<(NodeId, u32)> = b.iter().map(|(f, &m)| (f, m)).collect();
        assert_eq!(va, vb);
        assert_eq!(a.first().map(|(f, &m)| (f, m)), Some((NodeId(1), 10)));
        assert_eq!(b.get(1).map(|(f, &m)| (f, m)), Some((NodeId(4), 20)));
        assert!(Inbox::<u32>::empty().is_empty());
    }

    #[test]
    #[should_panic]
    fn send_to_non_neighbor_panics() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.send(NodeId(9), 1);
    }

    #[test]
    fn multi_channel_slots_and_writes() {
        let prev = [
            SlotOutcome::Idle,
            SlotOutcome::Success {
                from: NodeId(4),
                msg: 11u32,
            },
            SlotOutcome::Collision,
        ];
        let mut outbox = OutboxBuffer::new();
        let mut io = RoundIo::detached_multi(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            &prev,
            &mut outbox,
        );
        assert_eq!(io.channels(), 3);
        assert!(io.is_attached(ChannelId(2)));
        assert!(io.prev_slot().is_idle());
        let s = io.prev_slot_on(ChannelId(1));
        assert_eq!(s.sender(), Some(NodeId(4)));
        assert!(matches!(s, SlotOutcome::Success { msg: &11, .. }));
        assert!(io.prev_slot_on(ChannelId(2)).is_collision());

        io.write_channel_on(ChannelId(2), 7);
        io.write_channel_on(ChannelId(1), 5);
        io.write_channel_on(ChannelId(2), 9); // overwrites the first write
        assert!(io.will_write_channel());
        assert!(io.finish().is_none(), "no default-channel write staged");
        let mut writes = Vec::new();
        outbox.take_channel_writes(|c, from, m| writes.push((c, from, m)));
        assert_eq!(
            writes,
            vec![(ChannelId(2), NodeId(0), 9), (ChannelId(1), NodeId(0), 5)]
        );
        assert!(!outbox.has_channel_writes());
    }

    #[test]
    fn lane_writes_or_merge_and_reads_default_idle() {
        let prev = [SlotOutcome::Idle, SlotOutcome::Idle];
        let lanes = [LaneOutcome::Word(0b101), LaneOutcome::Erased];
        let mut outbox: OutboxBuffer<u32> = OutboxBuffer::new();
        let mut io = RoundIo::detached_multi(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            &prev,
            &mut outbox,
        )
        .with_lanes(&lanes);
        assert_eq!(io.prev_lanes_on(ChannelId(0)), LaneOutcome::Word(0b101));
        assert_eq!(io.prev_lanes_on(ChannelId(1)), LaneOutcome::Erased);
        io.write_lanes_on(ChannelId(0), 0b0011);
        io.write_lanes_on(ChannelId(1), 1 << 7);
        io.write_lanes_on(ChannelId(0), 0b0110); // OR-merges with the first
        let mut writes = Vec::new();
        outbox.take_lane_writes(|c, from, w| writes.push((c, from, w)));
        assert_eq!(
            writes,
            vec![
                (ChannelId(0), NodeId(0), 0b0111),
                (ChannelId(1), NodeId(0), 1 << 7)
            ]
        );
        assert!(!outbox.has_lane_writes());
    }

    #[test]
    fn lanes_default_to_idle_and_gate_on_attachment() {
        let prev = [SlotOutcome::<u32>::Idle, SlotOutcome::Idle];
        let lanes = [LaneOutcome::Word(1), LaneOutcome::Word(2)];
        let mut outbox = OutboxBuffer::new();
        // No with_lanes: everything reads idle.
        let io = RoundIo::detached_multi(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            &prev,
            &mut outbox,
        );
        assert!(io.prev_lanes_on(ChannelId(0)).is_idle());
        assert!(io.prev_lanes_on(ChannelId(1)).is_idle());
        // Unattached channels read idle even when the lane word was busy.
        let io = RoundIo::detached_multi(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            &prev,
            &mut outbox,
        )
        .with_lanes(&lanes)
        .with_attachment(0b10);
        assert!(io.prev_lanes_on(ChannelId(0)).is_idle());
        assert_eq!(io.prev_lanes_on(ChannelId(1)), LaneOutcome::Word(2));
    }

    #[test]
    #[should_panic(expected = "wrote lanes on")]
    fn lane_write_to_unknown_channel_panics() {
        let prev = SlotOutcome::<u32>::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.write_lanes_on(ChannelId(1), 1);
    }

    #[test]
    fn detached_attachment_gates_reads_and_writes() {
        let prev = [SlotOutcome::Collision, SlotOutcome::Collision];
        let mut outbox: OutboxBuffer<u32> = OutboxBuffer::new();
        let io = RoundIo::detached_multi(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            &prev,
            &mut outbox,
        )
        .with_attachment(0b10);
        assert!(!io.is_attached(ChannelId(0)));
        assert!(io.is_attached(ChannelId(1)));
        // Unattached channels read as idle even when the slot was busy.
        assert!(io.prev_slot_on(ChannelId(0)).is_idle());
        assert!(io.prev_slot_on(ChannelId(1)).is_collision());
    }

    #[test]
    #[should_panic(expected = "attachment mask")]
    fn detached_attachment_mask_must_fit() {
        let prev = [SlotOutcome::<u32>::Idle];
        let mut outbox = OutboxBuffer::new();
        let _ = RoundIo::detached_multi(
            NodeId(0),
            0,
            Neighbors::new(&TARGETS, &EDGES),
            Inbox::empty(),
            &prev,
            &mut outbox,
        )
        .with_attachment(0b10);
    }

    #[test]
    #[should_panic(expected = "wrote to")]
    fn write_to_unknown_channel_panics() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let mut io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        io.write_channel_on(ChannelId(1), 1);
    }

    #[test]
    #[should_panic(expected = "read")]
    fn read_unknown_channel_panics() {
        let prev = SlotOutcome::Idle;
        let mut outbox = OutboxBuffer::new();
        let io = make_io(Neighbors::new(&TARGETS, &EDGES), &[], &prev, &mut outbox);
        let _ = io.prev_slot_on(ChannelId(3));
    }
}
