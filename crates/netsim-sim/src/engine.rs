//! The synchronous round engine.
//!
//! The engine owns one [`Protocol`] instance per node and advances the whole
//! multimedia network one round at a time: in each round every node takes a
//! step (observing last round's deliveries and last slot's outcome), then all
//! point-to-point messages are put in flight for delivery at the next round
//! and the channel slot is resolved.  Costs are tallied in a
//! [`CostAccount`](crate::CostAccount).

use crate::channel::{resolve_slot, SlotOutcome};
use crate::metrics::CostAccount;
use crate::node::{Protocol, RoundIo};
use netsim_graph::{Graph, NodeId};

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every node reported [`Protocol::is_done`] and no messages were in flight.
    Completed {
        /// Rounds executed.
        rounds: u64,
    },
    /// The round limit was reached before completion.
    RoundLimit {
        /// Rounds executed (equals the limit).
        rounds: u64,
    },
}

impl RunOutcome {
    /// Rounds executed in either case.
    pub fn rounds(&self) -> u64 {
        match *self {
            RunOutcome::Completed { rounds } | RunOutcome::RoundLimit { rounds } => rounds,
        }
    }

    /// `true` when the run completed (rather than hitting the limit).
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// Synchronous executor of a [`Protocol`] over a multimedia network.
///
/// # Examples
///
/// ```
/// use netsim_graph::{generators, NodeId};
/// use netsim_sim::{SyncEngine, Protocol, RoundIo};
///
/// /// Every node broadcasts "hello" to its neighbours in round 0 and stops.
/// struct Hello { heard: usize, done: bool }
/// impl Protocol for Hello {
///     type Msg = ();
///     fn step(&mut self, io: &mut RoundIo<'_, ()>) {
///         if io.round() == 0 { io.send_all(()); }
///         self.heard += io.inbox().len();
///         if io.round() >= 1 { self.done = true; }
///     }
///     fn is_done(&self) -> bool { self.done }
/// }
///
/// let g = generators::ring(5);
/// let mut engine = SyncEngine::new(&g, |_| Hello { heard: 0, done: false });
/// let outcome = engine.run(10);
/// assert!(outcome.is_completed());
/// assert_eq!(engine.node(NodeId(0)).heard, 2);
/// ```
#[derive(Debug)]
pub struct SyncEngine<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// Messages to deliver at the start of the next round: `pending[v] = (from, msg)*`.
    pending: Vec<Vec<(NodeId, P::Msg)>>,
    prev_slot: SlotOutcome<P::Msg>,
    cost: CostAccount,
    round: u64,
}

impl<'g, P: Protocol> SyncEngine<'g, P> {
    /// Creates an engine over `graph`, instantiating each node's protocol
    /// with `init(node_id)`.
    pub fn new<F: FnMut(NodeId) -> P>(graph: &'g Graph, mut init: F) -> Self {
        let nodes = graph.nodes().map(&mut init).collect();
        SyncEngine {
            graph,
            nodes,
            pending: vec![Vec::new(); graph.node_count()],
            prev_slot: SlotOutcome::Idle,
            cost: CostAccount::new(),
            round: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Immutable access to all protocol states, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The cost account accumulated so far.
    pub fn cost(&self) -> &CostAccount {
        &self.cost
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Outcome of the most recently resolved channel slot.
    pub fn last_slot(&self) -> &SlotOutcome<P::Msg> {
        &self.prev_slot
    }

    /// Returns `true` when every node is done and no message is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(Protocol::is_done)
            && self.pending.iter().all(Vec::is_empty)
    }

    /// Executes one round for every node and resolves the channel slot.
    pub fn step_round(&mut self) {
        let n = self.graph.node_count();
        let mut new_pending: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut writes: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut messages_sent: u64 = 0;

        for v in self.graph.nodes() {
            let inbox = std::mem::take(&mut self.pending[v.index()]);
            let mut io = RoundIo {
                node: v,
                round: self.round,
                neighbors: self.graph.neighbors(v),
                inbox: &inbox,
                prev_slot: &self.prev_slot,
                outbox: Vec::new(),
                channel_write: None,
            };
            self.nodes[v.index()].step(&mut io);
            let RoundIo {
                outbox,
                channel_write,
                ..
            } = io;
            messages_sent += outbox.len() as u64;
            for (to, msg) in outbox {
                new_pending[to.index()].push((v, msg));
            }
            if let Some(msg) = channel_write {
                writes.push((v, msg));
            }
        }

        self.prev_slot = resolve_slot(&writes);
        self.cost.add_messages(messages_sent);
        self.cost.add_slot(writes.len() as u64);
        self.pending = new_pending;
        self.round += 1;
    }

    /// Runs until quiescence or until `max_rounds` rounds have elapsed in total.
    pub fn run(&mut self, max_rounds: u64) -> RunOutcome {
        while self.round < max_rounds {
            if self.is_quiescent() {
                return RunOutcome::Completed { rounds: self.round };
            }
            self.step_round();
        }
        if self.is_quiescent() {
            RunOutcome::Completed { rounds: self.round }
        } else {
            RunOutcome::RoundLimit { rounds: self.round }
        }
    }

    /// Runs until `predicate` over the node states becomes true, quiescence,
    /// or the round limit; returns the outcome as for [`SyncEngine::run`].
    pub fn run_until<F: FnMut(&[P]) -> bool>(
        &mut self,
        max_rounds: u64,
        mut predicate: F,
    ) -> RunOutcome {
        while self.round < max_rounds {
            if predicate(&self.nodes) || self.is_quiescent() {
                return RunOutcome::Completed { rounds: self.round };
            }
            self.step_round();
        }
        RunOutcome::RoundLimit { rounds: self.round }
    }

    /// Consumes the engine, returning the node states and the cost account.
    pub fn into_parts(self) -> (Vec<P>, CostAccount) {
        (self.nodes, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_graph::generators;

    /// Node 0 writes to the channel every round; all others listen and record
    /// the first message heard.
    struct Beacon {
        id: NodeId,
        heard: Option<u64>,
        done: bool,
    }

    impl Protocol for Beacon {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            if let SlotOutcome::Success { msg, .. } = io.prev_slot() {
                if self.heard.is_none() {
                    self.heard = Some(*msg);
                }
                self.done = true;
            }
            if self.id == NodeId(0) && !self.done {
                io.write_channel(99);
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn single_writer_broadcast_reaches_all() {
        let g = generators::ring(6);
        let mut eng = SyncEngine::new(&g, |id| Beacon {
            id,
            heard: None,
            done: false,
        });
        let out = eng.run(10);
        assert!(out.is_completed());
        for v in g.nodes() {
            assert_eq!(eng.node(v).heard, Some(99));
        }
        assert!(eng.cost().slots_success >= 1);
        assert_eq!(eng.cost().p2p_messages, 0);
    }

    /// All nodes write in round 0: a collision must be observed.
    struct Collider {
        saw_collision: bool,
    }
    impl Protocol for Collider {
        type Msg = u8;
        fn step(&mut self, io: &mut RoundIo<'_, u8>) {
            if io.round() == 0 {
                io.write_channel(1);
            }
            if io.prev_slot().is_collision() {
                self.saw_collision = true;
            }
        }
        fn is_done(&self) -> bool {
            self.saw_collision
        }
    }

    #[test]
    fn simultaneous_writes_collide() {
        let g = generators::complete(4);
        let mut eng = SyncEngine::new(&g, |_| Collider {
            saw_collision: false,
        });
        let out = eng.run(5);
        assert!(out.is_completed());
        assert_eq!(eng.cost().slots_collision, 1);
        assert_eq!(eng.cost().channel_writes, 4);
        for v in g.nodes() {
            assert!(eng.node(v).saw_collision);
        }
    }

    /// Flood a token from node 0 over the point-to-point network only.
    struct Flood {
        have: bool,
        sent: bool,
    }
    impl Protocol for Flood {
        type Msg = ();
        fn step(&mut self, io: &mut RoundIo<'_, ()>) {
            if !io.inbox().is_empty() {
                self.have = true;
            }
            if self.have && !self.sent {
                io.send_all(());
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.have
        }
    }

    #[test]
    fn flooding_takes_diameter_rounds() {
        let g = generators::path(8);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        let out = eng.run(100);
        assert!(out.is_completed());
        // Token must travel 7 hops; each hop takes one round, plus the final
        // quiescence check round.
        assert!(out.rounds() >= 7);
        assert!(out.rounds() <= 9);
        // Each node forwards once to all neighbours: total messages = sum of degrees = 2m.
        assert_eq!(eng.cost().p2p_messages, 2 * g.edge_count() as u64);
    }

    #[test]
    fn round_limit_is_reported() {
        struct Never;
        impl Protocol for Never {
            type Msg = ();
            fn step(&mut self, _io: &mut RoundIo<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::path(3);
        let mut eng = SyncEngine::new(&g, |_| Never);
        let out = eng.run(4);
        assert!(!out.is_completed());
        assert_eq!(out.rounds(), 4);
        assert_eq!(eng.round(), 4);
    }

    #[test]
    fn run_until_predicate() {
        let g = generators::path(5);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        let out = eng.run_until(100, |nodes| nodes.iter().filter(|n| n.have).count() >= 3);
        assert!(out.is_completed());
        assert!(out.rounds() <= 4);
        let (nodes, cost) = eng.into_parts();
        assert_eq!(nodes.len(), 5);
        assert!(cost.rounds >= 2);
    }
}
