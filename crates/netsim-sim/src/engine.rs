//! The synchronous round engine.
//!
//! The engine owns one [`Protocol`] instance per node and advances the whole
//! multimedia network one round at a time: in each round every node takes a
//! step (observing last round's deliveries and the previous slot outcome of
//! every channel it is attached to), then all point-to-point messages are put
//! in flight for delivery at the next round and one slot is resolved **per
//! channel** of the engine's [`ChannelSet`] (the paper's single channel is
//! the default).  Costs are tallied in a [`CostAccount`](crate::CostAccount).
//!
//! # Zero-allocation message plumbing
//!
//! The per-round hot path is allocation-free in steady state.  Message
//! delivery is double-buffered through two flat buffers that swap roles each
//! round:
//!
//! * the **inbox arena** — a CSR-style layout: one flat
//!   `Vec<(from, handle)>` plus an `offsets` index such that node `v`'s
//!   inbox for the current round is `arena[offsets[v]..offsets[v + 1]]`;
//! * the **staging buffer** — sends of the current round, appended in
//!   sender order as `(to, from, handle)` triples through the pooled
//!   [`OutboxBuffer`].
//!
//! Payloads themselves never enter either buffer: a send interns its payload
//! once into a [`PayloadArena`](crate::PayloadArena) and both buffers move
//! 4-byte [`PayloadHandle`](crate::PayloadHandle)s — a broadcast over `d`
//! links stores one payload, not `d` clones, so non-`Copy` message types
//! (`Vec<u8>` frames, wrapper enums) ride the same zero-copy path as `u64`s.
//! The engine keeps two payload arenas and swaps their roles each round
//! (stage into one, deliver from the other), expiring the delivered epoch
//! wholesale; see the [`payload`](crate::payload) module docs.
//!
//! **Channel writes ride the same plumbing**: a write is interned into the
//! staging arena and staged as a `(channel, writer, handle)` triple; slot
//! resolution produces handle-based outcomes resolved against the delivery
//! arena ([`RoundIo::prev_slot_on`] borrows the winner in place), so
//! resolving a slot never clones a message and the winner's buffer is
//! recycled like any delivered payload.
//!
//! After all nodes have stepped, the staging buffer is bucketed by receiver
//! into the (cleared, capacity-retaining) arena using per-receiver chains —
//! an O(n + k) stable counting bucket, no sorting, no per-node `Vec`s.  All
//! auxiliary buffers (chain heads, links, channel writes, payload slabs) are
//! pooled across rounds, so once capacities have grown to the workload's
//! high-water mark, `step_round` performs **zero heap allocations** (verified
//! by the `alloc_steady_state` integration test — for `Copy` *and* for
//! heap-carrying payloads, the latter via payload recycling).
//!
//! # Cache-aware receiver bucketing
//!
//! On large graphs the single-pass chain bucket walks the whole staging
//! buffer in receiver order, which on index-random topologies (random,
//! geometric, expander) means a cache miss per message: the chain heads span
//! the full `n`-entry array and the chain links jump all over the staging
//! buffer.  Above [`RADIX_MIN_NODES`] the scatter therefore runs in two
//! passes, radix-partitioned on the high bits of the receiver's CSR node
//! index: pass one streams the staging buffer once and scatters each message
//! into its receiver *block* (contiguous ranges of `2^BLOCK_SHIFT` node
//! indices — a handful of sequential write streams); pass two runs the
//! stable chain bucket *within* each block, where the chain heads, links and
//! messages all fit in cache.  Both passes are stable, so the delivery order
//! is bit-for-bit identical to the single-pass path, and both use pooled
//! buffers only.
//!
//! Because the partition pass costs one extra move per message, a streaming
//! *locality probe* gates it: when the staged receiver sequence is already
//! (almost) block-monotonic — ring, grid, and clustered topologies, whose
//! single-pass bucket is cache-friendly by construction — the engine keeps
//! the one-pass path and pays only the probe's sequential scan.
//!
//! # Determinism contract
//!
//! Each node's inbox is ordered by the **sender's node index** (and, per
//! sender, by send order within the round).  Quiescence is tracked in O(1)
//! with a done-node counter and the in-flight arena length.  With the
//! `parallel` feature, [`SyncEngine::step_round_parallel`] steps nodes in
//! contiguous index chunks on scoped threads and merges the per-thread
//! shards in node-index order, so parallel runs are bit-for-bit identical to
//! sequential ones.

use crate::channel::{ChannelId, ChannelOutcome, ChannelSet, LaneOutcome, SlotState};
use crate::fault::{FaultPlan, FaultSession, NodeLifecycle};
use crate::metrics::CostAccount;
use crate::node::{Inbox, OutboxBuffer, Protocol, RoundIo, Slots, Staged};
use crate::payload::{PayloadArena, PayloadHandle};
use netsim_graph::{Graph, Neighbors, NodeId};

/// Chain terminator for the receiver-bucketing pass.
const NIL: u32 = u32::MAX;

/// Fallback log₂ of the receiver-block width of the radix scatter when the
/// cache probe fails: each block covers `2^11 = 2048` consecutive node
/// indices, sized so one block's chain heads, links, and staged messages
/// stay cache-resident on a typical 512 KiB–1 MiB L2.
const DEFAULT_BLOCK_SHIFT: u32 = 11;

/// Bounds on the tuned block shift: 512-node blocks are the smallest worth
/// the partition pass, 8192-node blocks the largest that plausibly fit any
/// per-core cache.
const BLOCK_SHIFT_RANGE: (u32, u32) = (9, 13);

/// Node count below which the radix pass is skipped: the whole chain-head
/// array already fits in cache, so one pass beats two.
const RADIX_MIN_NODES: usize = 1 << 14;

/// The radix block shift used by every engine constructed in this process:
/// probed once from the CPU's reported L2 cache size and cached.
///
/// A block's working set during the chain-bucket pass is roughly 128 bytes
/// per node index (chain head + link + a handful of staged `(to, from,
/// handle)` triples at typical degree), so the block is sized to half the
/// L2: `2^shift ≈ L2 / 2 / 128`, clamped to `[9, 13]`.  When the probe
/// fails (non-Linux, masked sysfs), the hard-coded default of 11 (2048-node
/// blocks) is kept.  The chosen shift is recorded in the bench metadata so
/// regressions are attributable to tuning changes.
pub fn tuned_block_shift() -> u32 {
    static SHIFT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *SHIFT.get_or_init(|| probe_block_shift().unwrap_or(DEFAULT_BLOCK_SHIFT))
}

/// Reads the L2 data-cache size from sysfs and derives the block shift; see
/// [`tuned_block_shift`].  Returns `None` when the probe cannot run — the
/// file is absent (non-Linux, masked sysfs) or its contents are malformed.
fn probe_block_shift() -> Option<u32> {
    let text = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index2/size").ok()?;
    Some(block_shift_for_l2(parse_l2_size(&text)?))
}

/// Parses a sysfs cache-size string (`"512K\n"`, `"4M"`, `"262144"`) into
/// bytes.  Returns `None` for anything malformed — empty input, stray
/// characters, overflow, or a zero size (a zero-byte cache is a garbled
/// report, not a tuning signal).
fn parse_l2_size(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, multiplier) = if let Some(d) = text.strip_suffix(['K', 'k']) {
        (d, 1024u64)
    } else if let Some(d) = text.strip_suffix(['M', 'm']) {
        (d, 1024 * 1024)
    } else {
        (text, 1)
    };
    let bytes = digits.parse::<u64>().ok()?.checked_mul(multiplier)?;
    if bytes == 0 {
        return None;
    }
    Some(bytes)
}

/// Derives the radix block shift from an L2 size in bytes; total for every
/// input and always within [`BLOCK_SHIFT_RANGE`].
fn block_shift_for_l2(l2_bytes: u64) -> u32 {
    let nodes_per_block = (l2_bytes / 2 / 128).max(1);
    nodes_per_block
        .ilog2()
        .clamp(BLOCK_SHIFT_RANGE.0, BLOCK_SHIFT_RANGE.1)
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every node reported [`Protocol::is_done`] and no messages were in flight.
    Completed {
        /// Rounds executed.
        rounds: u64,
    },
    /// The round limit was reached before completion.
    RoundLimit {
        /// Rounds executed (equals the limit).
        rounds: u64,
    },
}

impl RunOutcome {
    /// Rounds executed in either case.
    pub fn rounds(&self) -> u64 {
        match *self {
            RunOutcome::Completed { rounds } | RunOutcome::RoundLimit { rounds } => rounds,
        }
    }

    /// `true` when the run completed (rather than hitting the limit).
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// The activity frontier of the sparse stepping mode: the set of nodes that
/// must step next round, double-buffered so wakeups raised *during* a round
/// (message receivers, `wake_me` requests, slot listeners) land in the next
/// round's set while the current round consumes a frozen, sorted one.
///
/// Membership is a dense bitset (`bits`, one bit per node, for O(1) dedup)
/// plus an overflow list (`members`, the actual members, unordered while
/// accumulating).  [`Frontier::advance`] rotates the accumulator into the
/// active set and sorts it ascending — stepping members in ascending node
/// index is what keeps each receiver's inbox ordered by sender index, the
/// engine's determinism contract.
#[derive(Debug, Default)]
struct Frontier {
    /// Dense membership bitset over node indices (dedup for `members`).
    bits: Vec<u64>,
    /// Accumulating members of the **next** round's frontier (unordered).
    members: Vec<u32>,
    /// Next round must step every node (round 0, re-attachment,
    /// `update_nodes`, a non-idle slot under uniform attachment).
    all: bool,
    /// Sorted members consumed by the **current** round's sparse step.
    active: Vec<u32>,
    /// The current round stepped every node.
    active_all: bool,
}

impl Frontier {
    fn new(n: usize) -> Self {
        Frontier {
            bits: vec![0; n.div_ceil(64)],
            members: Vec::new(),
            all: true,
            active: Vec::new(),
            active_all: false,
        }
    }

    /// Schedules node `v` onto the next round's frontier (idempotent).
    #[inline]
    fn wake(&mut self, v: usize) {
        if self.all {
            return;
        }
        let (word, bit) = (v >> 6, 1u64 << (v & 63));
        if self.bits[word] & bit == 0 {
            self.bits[word] |= bit;
            self.members.push(v as u32);
        }
    }

    /// Schedules every node onto the next round's frontier.
    fn wake_all(&mut self) {
        self.all = true;
    }

    /// Rotates the accumulated wakeups into the active set (sorted
    /// ascending) and resets the accumulator; pooled buffers only.
    fn advance(&mut self) {
        self.active.clear();
        std::mem::swap(&mut self.active, &mut self.members);
        self.active_all = std::mem::take(&mut self.all);
        for &v in &self.active {
            self.bits[(v as usize) >> 6] &= !(1u64 << (v & 63));
        }
        self.active.sort_unstable();
    }
}

/// Per-worker staging state: sends and channel writes produced by a
/// contiguous chunk of nodes (both staged inside the [`OutboxBuffer`], as
/// handle triples over its payload arena), plus the chunk's done-transition
/// balance.  The sequential engine uses exactly one shard; the `parallel`
/// feature gives each worker thread its own and merges them in node-index
/// order.
#[derive(Debug)]
struct Shard<M> {
    outbox: OutboxBuffer<M>,
    done_delta: isize,
    /// Nodes actually stepped by this shard this round.
    stepped: u64,
    /// Node indices stepped by this shard this round, in step order; only
    /// recorded under sparse stepping (pooled, drained by `finish_round`).
    stepped_list: Vec<u32>,
}

impl<M> Default for Shard<M> {
    fn default() -> Self {
        Shard {
            outbox: OutboxBuffer::new(),
            done_delta: 0,
            stepped: 0,
            stepped_list: Vec::new(),
        }
    }
}

/// Steps every node of `chunk` (node indices `base..base + chunk.len()`)
/// once, staging outputs into `shard`.  Non-operational nodes (per the
/// optional fault lifecycle slice) neither step nor stage.  Free function so
/// the sequential and parallel paths share it and the borrows stay disjoint.
#[allow(clippy::too_many_arguments)]
fn step_chunk<P: Protocol>(
    graph: &Graph,
    chunk: &mut [P],
    base: usize,
    arena: &[(NodeId, PayloadHandle)],
    payloads: &PayloadArena<P::Msg>,
    offsets: &[usize],
    channels: &ChannelSet,
    slot_outcomes: &[ChannelOutcome],
    prev_lanes: &[LaneOutcome],
    round: u64,
    lifecycles: Option<&[NodeLifecycle]>,
    shard: &mut Shard<P::Msg>,
) {
    for (i, node) in chunk.iter_mut().enumerate() {
        let v = NodeId(base + i);
        if lifecycles.is_some_and(|l| !l[v.index()].is_operational()) {
            continue;
        }
        let was_done = node.is_done();
        let mut io = RoundIo {
            node: v,
            round,
            neighbors: graph.neighbors(v),
            inbox: Inbox::arena(&arena[offsets[v.index()]..offsets[v.index() + 1]], payloads),
            slots: Slots::Arena {
                outcomes: slot_outcomes,
                payloads,
            },
            lanes: prev_lanes,
            attached: channels.mask(v),
            outbox: &mut shard.outbox,
        };
        node.step(&mut io);
        shard.done_delta += isize::from(node.is_done()) - isize::from(was_done);
        shard.stepped += 1;
    }
}

/// Shared immutable context of a sparse stepping pass; bundles the borrows
/// so the sequential and parallel sparse paths share [`step_sparse`].
struct SparseCtx<'a, M> {
    graph: &'a Graph,
    arena: &'a [(NodeId, PayloadHandle)],
    payloads: &'a PayloadArena<M>,
    /// Per-node epoch stamps: node `v`'s inbox range is valid only when
    /// `inbox_epoch[v] == arena_epoch`; anything staler is an empty inbox.
    inbox_epoch: &'a [u64],
    /// Per-node `(start, len)` ranges into `arena`, epoch-gated.
    inbox_ranges: &'a [(u32, u32)],
    arena_epoch: u64,
    channels: &'a ChannelSet,
    slot_outcomes: &'a [ChannelOutcome],
    prev_lanes: &'a [LaneOutcome],
    round: u64,
    lifecycles: Option<&'a [NodeLifecycle]>,
}

impl<M> Clone for SparseCtx<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for SparseCtx<'_, M> {}

/// Steps the frontier members that fall inside `chunk` (node indices
/// `base..base + chunk.len()`), staging outputs into `shard`.  `members` is
/// the sorted slice of this chunk's frontier indices; `None` steps every
/// node of the chunk (an all-active round).  Idle nodes are never touched:
/// their inbox is resolved lazily through the epoch stamp, so no per-node
/// state is read, cloned, or iterated for nodes off the frontier.
fn step_sparse<P: Protocol>(
    ctx: SparseCtx<'_, P::Msg>,
    chunk: &mut [P],
    base: usize,
    members: Option<&[u32]>,
    shard: &mut Shard<P::Msg>,
) {
    let step_one = |vi: usize, nbrs: Neighbors<'_>, node: &mut P, shard: &mut Shard<P::Msg>| {
        if ctx.lifecycles.is_some_and(|l| !l[vi].is_operational()) {
            // A node that crashed while on the frontier is skipped exactly
            // like the dense path skips it: no step, no done-delta, and its
            // frontier slot simply expires with this round.
            return;
        }
        let v = NodeId(vi);
        let was_done = node.is_done();
        let entries = if ctx.inbox_epoch[vi] == ctx.arena_epoch {
            let (start, len) = ctx.inbox_ranges[vi];
            &ctx.arena[start as usize..(start + len) as usize]
        } else {
            &[]
        };
        let mut io = RoundIo {
            node: v,
            round: ctx.round,
            neighbors: nbrs,
            inbox: Inbox::arena(entries, ctx.payloads),
            slots: Slots::Arena {
                outcomes: ctx.slot_outcomes,
                payloads: ctx.payloads,
            },
            lanes: ctx.prev_lanes,
            attached: ctx.channels.mask(v),
            outbox: &mut shard.outbox,
        };
        node.step(&mut io);
        shard.done_delta += isize::from(node.is_done()) - isize::from(was_done);
        shard.stepped += 1;
        shard.stepped_list.push(vi as u32);
    };
    match members {
        Some(list) => {
            // Frontier-shaped CSR iteration: O(|members|) offset reads, no
            // adjacency data of idle nodes is touched.
            for (v, nbrs) in ctx.graph.frontier_rows(list) {
                let vi = v.index();
                let node = &mut chunk[vi - base];
                step_one(vi, nbrs, node, shard);
            }
        }
        None => {
            for (i, node) in chunk.iter_mut().enumerate() {
                let vi = base + i;
                step_one(vi, ctx.graph.neighbors(NodeId(vi)), node, shard);
            }
        }
    }
}

/// Synchronous executor of a [`Protocol`] over a multimedia network.
///
/// # Examples
///
/// ```
/// use netsim_graph::{generators, NodeId};
/// use netsim_sim::{SyncEngine, Protocol, RoundIo};
///
/// /// Every node broadcasts "hello" to its neighbours in round 0 and stops.
/// struct Hello { heard: usize, done: bool }
/// impl Protocol for Hello {
///     type Msg = ();
///     fn step(&mut self, io: &mut RoundIo<'_, ()>) {
///         if io.round() == 0 { io.send_all(()); }
///         self.heard += io.inbox().len();
///         if io.round() >= 1 { self.done = true; }
///     }
///     fn is_done(&self) -> bool { self.done }
/// }
///
/// let g = generators::ring(5);
/// let mut engine = SyncEngine::new(&g, |_| Hello { heard: 0, done: false });
/// let outcome = engine.run(10);
/// assert!(outcome.is_completed());
/// assert_eq!(engine.node(NodeId(0)).heard, 2);
/// ```
#[derive(Debug)]
pub struct SyncEngine<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// The multiaccess channel substrate: `K` channels + per-node attachment.
    channels: ChannelSet,
    /// Flat inbox arena for the current round: node `v` receives
    /// `arena[offsets[v]..offsets[v + 1]]`, ordered by sender index.  Each
    /// entry is `(from, payload handle)`; the payload lives in `payloads`.
    arena: Vec<(NodeId, PayloadHandle)>,
    /// Delivery-side payload arena: resolves the handles in `arena` **and**
    /// the slot winners in `slot_outcomes`.  Swaps roles with the staging
    /// arena(s) inside the shards every round.
    payloads: PayloadArena<P::Msg>,
    /// CSR index into `arena`; length `n + 1`.
    offsets: Vec<usize>,
    /// Pooled staging state (one shard sequentially; one per worker with the
    /// `parallel` feature).
    shards: Vec<Shard<P::Msg>>,
    /// Per-channel outcome of the last resolved round, winners as handles
    /// into `payloads`; length `K`.
    slot_outcomes: Vec<ChannelOutcome>,
    /// Pooled merged channel writes of the current round (handles into the
    /// freshly rotated delivery arena).
    chan_writes: Vec<(ChannelId, NodeId, PayloadHandle)>,
    /// Pooled per-channel writer counters; length `K`.
    chan_counts: Vec<u32>,
    /// Channels of `slot_outcomes` that are currently non-idle; cached so
    /// quiescence stays O(1).
    nonidle_slots: usize,
    /// Per-channel lane sub-slot outcome of the last resolved round; length
    /// `K`.  Lane words are bare `u64`s, so they bypass the payload arena.
    prev_lanes: Vec<LaneOutcome>,
    /// Pooled merged lane writes of the current round.
    lane_writes: Vec<(ChannelId, NodeId, u64)>,
    /// Pooled per-channel lane writer counters; length `K`.
    lane_counts: Vec<u32>,
    /// Pooled per-channel OR-accumulators of the lane fold; length `K`.
    lane_accum: Vec<u64>,
    /// Channels of `prev_lanes` that are currently non-idle; cached so
    /// quiescence stays O(1).
    nonidle_lanes: usize,
    /// Pooled per-receiver chain heads for the bucketing pass; length `n`.
    heads: Vec<u32>,
    /// Pooled chain links, parallel to the staging buffer.
    links: Vec<u32>,
    /// Pooled radix-partitioned copy of the staging buffer (large graphs
    /// only; empty below [`RADIX_MIN_NODES`]).
    scratch: Vec<Staged>,
    /// Pooled per-block write cursors of the radix pass; length `blocks + 1`.
    block_cursors: Vec<u32>,
    cost: CostAccount,
    /// Per-channel breakdown of the channel-scoped counters in `cost`
    /// (rounds, slot classification, lane classification, corruption);
    /// length `K`.  Point-to-point counters stay global-only.  This is the
    /// contention signal [`reshard::ContentionMonitor`](crate::reshard)
    /// consumes as deltas.
    chan_cost: Vec<CostAccount>,
    round: u64,
    /// Number of nodes currently reporting [`Protocol::is_done`]; maintained
    /// incrementally so quiescence is O(1).
    done_count: usize,
    /// Injected-fault session, when [`SyncEngine::set_fault_plan`] installed
    /// one; `None` keeps every fault check off the hot path.
    faults: Option<FaultSession>,
    /// Number of nodes in a quiescence-exempt lifecycle state (`Off` /
    /// `Crashed`) that are *not* done; maintained at lifecycle transitions so
    /// the faulted quiescence check stays O(1).
    undone_exempt: usize,
    /// Activity frontier of the opt-in sparse stepping mode; `None` runs
    /// dense (every node steps every round).
    frontier: Option<Frontier>,
    /// Per-node inbox epoch stamps of the sparse CSR (see
    /// [`SyncEngine::enable_sparse_stepping`]); length `n` under sparse
    /// stepping, empty when dense.
    inbox_epoch: Vec<u64>,
    /// Per-node `(start, len)` inbox ranges into `arena`, valid only when
    /// the node's epoch stamp is current; length `n` under sparse stepping.
    inbox_ranges: Vec<(u32, u32)>,
    /// Current arena epoch, bumped by every sparse rebuild.
    arena_epoch: u64,
    /// Pooled list of receivers touched by the current sparse rebuild.
    touched: Vec<u32>,
    /// Node indices stepped in the last executed round, ascending; recorded
    /// only under sparse stepping (pooled).
    last_stepped: Vec<u32>,
    /// Nodes stepped in the last executed round (dense: the operational
    /// count; sparse: the frontier members actually stepped).
    stepped_last_round: u64,
    /// Cumulative nodes stepped across all rounds.
    total_stepped: u64,
    /// Radix block shift used by the dense receiver bucketing; probed once
    /// per process from the cache hierarchy ([`tuned_block_shift`]).
    block_shift: u32,
}

impl<'g, P: Protocol> SyncEngine<'g, P> {
    /// Creates an engine over `graph` with the paper's single-channel model
    /// ([`ChannelSet::single`]), instantiating each node's protocol with
    /// `init(node_id)`.
    pub fn new<F: FnMut(NodeId) -> P>(graph: &'g Graph, init: F) -> Self {
        SyncEngine::with_channels(graph, ChannelSet::single(), init)
    }

    /// Creates an engine over `graph` and an explicit multiaccess
    /// [`ChannelSet`].
    ///
    /// # Panics
    ///
    /// Panics if the channel set's per-node attachment table does not cover
    /// exactly the graph's node count.
    pub fn with_channels<F: FnMut(NodeId) -> P>(
        graph: &'g Graph,
        channels: ChannelSet,
        mut init: F,
    ) -> Self {
        if let Some(len) = channels.table_len() {
            assert_eq!(
                len,
                graph.node_count(),
                "channel attachment table covers {len} nodes, graph has {}",
                graph.node_count()
            );
        }
        let nodes: Vec<P> = graph.nodes().map(&mut init).collect();
        let n = graph.node_count();
        let k = channels.channels() as usize;
        let done_count = nodes.iter().filter(|p| p.is_done()).count();
        SyncEngine {
            graph,
            nodes,
            channels,
            arena: Vec::new(),
            payloads: PayloadArena::new(),
            offsets: vec![0; n + 1],
            shards: vec![Shard::default()],
            slot_outcomes: vec![ChannelOutcome::Idle; k],
            chan_writes: Vec::new(),
            chan_counts: vec![0; k],
            nonidle_slots: 0,
            prev_lanes: vec![LaneOutcome::Idle; k],
            lane_writes: Vec::new(),
            lane_counts: vec![0; k],
            lane_accum: vec![0; k],
            nonidle_lanes: 0,
            heads: vec![NIL; n],
            links: Vec::new(),
            scratch: Vec::new(),
            block_cursors: Vec::new(),
            cost: CostAccount::new(),
            chan_cost: vec![CostAccount::new(); k],
            round: 0,
            done_count,
            faults: None,
            undone_exempt: 0,
            frontier: None,
            inbox_epoch: Vec::new(),
            inbox_ranges: Vec::new(),
            arena_epoch: 0,
            touched: Vec::new(),
            last_stepped: Vec::new(),
            stepped_last_round: 0,
            total_stepped: 0,
            block_shift: tuned_block_shift(),
        }
    }

    /// Switches the engine to **sparse (active-set) stepping**: each round
    /// steps only the nodes on the activity frontier — nodes with a
    /// non-empty inbox, a non-idle outcome on an attached channel, a
    /// lifecycle transition this round, or a pending [`RoundIo::wake_me`]
    /// request — instead of all `n`.  Idle nodes are never touched, cloned,
    /// or iterated, so per-round cost is O(active), not O(n).
    ///
    /// # Epoch-lazy state rules
    ///
    /// Idle nodes are skipped *lazily*: the sparse inbox index is a per-node
    /// `(start, len)` range stamped with the epoch of the rebuild that wrote
    /// it, and only the receivers of the round's messages are re-stamped.  A
    /// stale stamp **is** the empty inbox — no per-node clearing pass ever
    /// runs, which is what makes a fully idle round O(1) in `n`.
    ///
    /// # Frontier-safety contract
    ///
    /// The protocol must be **frontier-safe**: a step observing an empty
    /// inbox, only `Idle` outcomes on its attached channels, and no
    /// lifecycle transition must be a pure no-op (no sends, no channel
    /// writes, no state or done-flag change) — *unless* the node re-armed
    /// itself with [`RoundIo::wake_me`], which keeps it on the frontier.
    /// Protocols that advance timers on idle observations satisfy the
    /// contract by calling `wake_me` while unfinished.  For a frontier-safe
    /// protocol, sparse runs are bit-for-bit identical to dense runs —
    /// states, traces, costs, and lifecycles (pinned by the
    /// `engine_conformance` suite and the `frontier_properties` proptests).
    ///
    /// Quiescence detection is unchanged (and `wake_me` does not prevent
    /// it); see [`SyncEngine::is_quiescent`].
    ///
    /// # Panics
    ///
    /// Panics if rounds have already executed: the sparse inbox index
    /// cannot adopt a dense engine's in-flight state mid-run.
    pub fn enable_sparse_stepping(&mut self) {
        assert_eq!(
            self.round, 0,
            "sparse stepping must be enabled before round 0"
        );
        let n = self.graph.node_count();
        self.frontier = Some(Frontier::new(n));
        self.inbox_epoch = vec![0; n];
        self.inbox_ranges = vec![(0, 0); n];
        // Epoch 0 stamps must all read stale until the first sparse rebuild.
        self.arena_epoch = 1;
    }

    /// `true` when sparse (active-set) stepping is enabled.
    pub fn sparse_stepping(&self) -> bool {
        self.frontier.is_some()
    }

    /// Nodes stepped in the last executed round: under sparse stepping the
    /// frontier members actually stepped, under dense stepping the
    /// operational node count.
    pub fn stepped_last_round(&self) -> u64 {
        self.stepped_last_round
    }

    /// Cumulative nodes stepped across all executed rounds; divided by
    /// `rounds * n` this is the run's *activity fraction*.
    pub fn total_stepped(&self) -> u64 {
        self.total_stepped
    }

    /// Node indices stepped in the last executed round, ascending; `None`
    /// under dense stepping (where it would always be the operational set).
    /// The `frontier_properties` proptests compare this against the
    /// reference engine's brute-force active set.
    pub fn last_stepped(&self) -> Option<&[u32]> {
        self.frontier.as_ref().map(|_| self.last_stepped.as_slice())
    }

    /// Installs a deterministic [`FaultPlan`]; must be called before the
    /// first round executes.  See the [`fault`](crate::fault) module docs
    /// for the pinned application-point contract (drops at the delivery
    /// boundary, erasures at the resolve boundary, crashes at round start).
    ///
    /// # Panics
    ///
    /// Panics if rounds have already executed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(self.round, 0, "fault plan must be installed before round 0");
        let session = FaultSession::new(plan, self.graph.node_count());
        self.undone_exempt = session
            .lifecycles()
            .iter()
            .zip(&self.nodes)
            .filter(|(l, p)| l.is_exempt() && !p.is_done())
            .count();
        self.faults = Some(session);
    }

    /// The installed fault session, if any — exposes per-node
    /// [`NodeLifecycle`] states and the churn count.
    pub fn fault_session(&self) -> Option<&FaultSession> {
        self.faults.as_ref()
    }

    /// Current lifecycle state of node `v` (`Operational` when no fault
    /// plan is installed).
    pub fn fault_lifecycle(&self, v: NodeId) -> NodeLifecycle {
        self.faults
            .as_ref()
            .map_or(NodeLifecycle::Operational, |s| s.lifecycle(v))
    }

    /// Applies the current round's lifecycle transitions (crashes, recover
    /// hooks, boot promotions) and charges the round's churn; no-op without
    /// a fault plan.
    fn apply_fault_round(&mut self) {
        let Some(session) = &mut self.faults else {
            return;
        };
        let nodes = &mut self.nodes;
        let done_count = &mut self.done_count;
        let undone_exempt = &mut self.undone_exempt;
        let frontier = &mut self.frontier;
        session.apply_round(self.round, |v, _, to| match to {
            // Entering an exempt state: always from Operational/Booting.
            NodeLifecycle::Crashed => {
                *undone_exempt += usize::from(!nodes[v.index()].is_done());
            }
            // Leaving an exempt state: the recover hook may re-initialise
            // the node, so rebalance the done counter around it.
            NodeLifecycle::Booting => {
                let node = &mut nodes[v.index()];
                let was = node.is_done();
                *undone_exempt -= usize::from(!was);
                node.on_recover();
                let now = node.is_done();
                *done_count = done_count
                    .checked_add_signed(isize::from(now) - isize::from(was))
                    .expect("done count balances");
            }
            // A boot promotion is a lifecycle wakeup: the rejoining node
            // steps this very round, exactly as under dense stepping.  The
            // frontier bitset dedups against a wake it may already hold
            // (e.g. as a message receiver).
            NodeLifecycle::Operational => {
                if let Some(f) = frontier {
                    f.wake(v.index());
                }
            }
            NodeLifecycle::Off => {}
        });
        session.charge_round(&mut self.cost);
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The multiaccess channel substrate.
    pub fn channels(&self) -> &ChannelSet {
        &self.channels
    }

    /// Applies a dynamic attachment snapshot ([`ChannelSet::reattach`]) to
    /// the engine's channel set **between rounds**, one bitmask per node.
    ///
    /// # Determinism contract
    ///
    /// The snapshot takes effect for the next executed round: that round's
    /// steps observe the previous round's slot outcomes gated by the **new**
    /// masks ([`RoundIo::prev_slot_on`] reads `Idle` on a channel the node
    /// just detached from, and a newly attached node hears the channel's
    /// pending outcome), and channel writes are gated by the new masks.  The
    /// result is a pure function of the call sequence — identical across the
    /// flat, reference, and async-lockstep engines, pinned by the
    /// `engine_conformance` re-attachment scenario.
    ///
    /// # Panics
    ///
    /// Panics if `masks` does not cover exactly the graph's node count or a
    /// mask addresses a channel beyond the set's `K`.
    pub fn reattach(&mut self, masks: &[u64]) {
        assert_eq!(
            masks.len(),
            self.graph.node_count(),
            "re-attachment covers {} nodes, graph has {}",
            masks.len(),
            self.graph.node_count()
        );
        self.channels.reattach(masks);
        // Attachment changes what every node hears next round; re-seed the
        // frontier conservatively rather than re-deriving audibility.
        if let Some(f) = &mut self.frontier {
            f.wake_all();
        }
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Mutably visits every node's protocol state **between rounds** — the
    /// hook multi-phase pipelines use to seed the next phase (e.g. the
    /// channel-sharded MST re-arming its per-fragment elections after a
    /// re-attachment) — then recounts the done nodes so the O(1) quiescence
    /// tracking stays sound.
    pub fn update_nodes<F: FnMut(NodeId, &mut P)>(&mut self, mut f: F) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            f(NodeId(i), node);
        }
        self.done_count = self.nodes.iter().filter(|p| p.is_done()).count();
        self.undone_exempt = match &self.faults {
            Some(session) => session
                .lifecycles()
                .iter()
                .zip(&self.nodes)
                .filter(|(l, p)| l.is_exempt() && !p.is_done())
                .count(),
            None => 0,
        };
        // Arbitrary state edits invalidate any sparsity assumption: every
        // node may now have work, so the next round steps all of them.
        if let Some(f) = &mut self.frontier {
            f.wake_all();
        }
    }

    /// Immutable access to all protocol states, indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The cost account accumulated so far.
    pub fn cost(&self) -> &CostAccount {
        &self.cost
    }

    /// Per-channel breakdown of the channel-scoped counters of
    /// [`cost`](Self::cost): entry `c` carries channel `c`'s rounds, slot
    /// classification (idle / success / collision / erased), write attempts,
    /// and lane counters.  Point-to-point counters (`p2p_messages`,
    /// `dropped_messages`, `crashed_rounds`) are not channel-scoped and stay
    /// zero here.  Summing the channel-scoped counters over all `K` entries
    /// reproduces the global account's.
    pub fn channel_costs(&self) -> &[CostAccount] {
        &self.chan_cost
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// State (idle / success / collision) of channel `chan`'s most recently
    /// resolved slot.  The winning *message* is only observable from inside
    /// a step ([`RoundIo::prev_slot_on`]) — it lives in the round's delivery
    /// arena, which is what makes slot resolution clone-free.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's [`ChannelSet`].
    pub fn last_slot_state(&self, chan: ChannelId) -> SlotState {
        match self.slot_outcomes[chan.index()] {
            ChannelOutcome::Idle => SlotState::Idle,
            ChannelOutcome::Success { .. } => SlotState::Success,
            ChannelOutcome::Collision => SlotState::Collision,
            ChannelOutcome::Erased => SlotState::Erased,
        }
    }

    /// Outcome of channel `chan`'s most recently resolved lane sub-slot
    /// (the word-wide OR-merge surface; see [`RoundIo::prev_lanes_on`]).
    ///
    /// # Panics
    ///
    /// Panics if `chan` is not a channel of the engine's [`ChannelSet`].
    pub fn last_lanes(&self, chan: ChannelId) -> LaneOutcome {
        self.prev_lanes[chan.index()]
    }

    /// Number of point-to-point messages currently in flight (sent last
    /// round, delivered at the next step).
    pub fn in_flight(&self) -> usize {
        self.arena.len()
    }

    /// The delivery-side [`PayloadArena`]: the payloads that will be (or
    /// were just) handed to the nodes' inboxes this round.  Exposed for
    /// introspection — slab-reuse tests assert that its capacity and
    /// high-water mark stay bounded over long runs.
    pub fn payload_arena(&self) -> &PayloadArena<P::Msg> {
        &self.payloads
    }

    /// Total payload slots across the delivery arena and every staging
    /// arena — the engine's whole payload-slab footprint, which must stop
    /// growing once per-round traffic reaches its high-water mark.
    pub fn payload_slab_capacity(&self) -> usize {
        self.payloads.capacity()
            + self
                .shards
                .iter()
                .map(|s| s.outbox.arena.capacity())
                .sum::<usize>()
    }

    /// Returns `true` when every node is done, no message is in flight, and
    /// every channel's last slot was idle.
    ///
    /// The slot condition makes quiescence consistent across substrates: a
    /// write resolved in the final round produces feedback that every
    /// attached node hears (the paper's channel model), so the engine
    /// executes one more round to deliver it instead of dropping it —
    /// exactly as the asynchronous engine, which cannot quiesce with a write
    /// pending, and as the reference engine (pinned by the
    /// `engine_conformance` suite).
    ///
    /// O(1): the engine tracks done-state transitions across steps, the
    /// in-flight count is the arena length, and the non-idle channel count
    /// is cached at slot resolution.
    ///
    /// Under an installed fault plan, nodes whose lifecycle is `Off` or
    /// `Crashed` are **exempt**: they count as settled whether or not their
    /// protocol reports done (a crashed node can never step again to finish).
    /// Tracked exactly as `done + undone-exempt == n`, maintained at
    /// lifecycle transitions.
    pub fn is_quiescent(&self) -> bool {
        self.done_count + self.undone_exempt == self.nodes.len()
            && self.arena.is_empty()
            && self.nonidle_slots == 0
            && self.nonidle_lanes == 0
    }

    /// Executes one round for every node and resolves one slot per channel.
    ///
    /// With a fault plan installed the round's lifecycle transitions apply
    /// **first** (crashes at round start), then only `Operational` nodes
    /// step.
    pub fn step_round(&mut self) {
        self.apply_fault_round();
        if self.frontier.is_some() {
            self.step_frontier_sequential();
        } else {
            let SyncEngine {
                graph,
                nodes,
                channels,
                arena,
                payloads,
                offsets,
                shards,
                slot_outcomes,
                prev_lanes,
                round,
                faults,
                ..
            } = self;
            step_chunk(
                graph,
                nodes,
                0,
                arena,
                payloads,
                offsets,
                channels,
                slot_outcomes,
                prev_lanes,
                *round,
                faults.as_ref().map(|s| s.lifecycles()),
                &mut shards[0],
            );
        }
        self.finish_round();
    }

    /// Sequential sparse step: rotates the frontier (this round's lifecycle
    /// wakeups included — [`SyncEngine::apply_fault_round`] has already run)
    /// and steps exactly the active members in ascending node index.
    fn step_frontier_sequential(&mut self) {
        let SyncEngine {
            graph,
            nodes,
            channels,
            arena,
            payloads,
            shards,
            slot_outcomes,
            prev_lanes,
            round,
            faults,
            frontier,
            inbox_epoch,
            inbox_ranges,
            arena_epoch,
            ..
        } = self;
        let frontier = frontier.as_mut().expect("sparse mode");
        frontier.advance();
        let ctx = SparseCtx {
            graph,
            arena: arena.as_slice(),
            payloads: &*payloads,
            inbox_epoch: inbox_epoch.as_slice(),
            inbox_ranges: inbox_ranges.as_slice(),
            arena_epoch: *arena_epoch,
            channels: &*channels,
            slot_outcomes: slot_outcomes.as_slice(),
            prev_lanes: prev_lanes.as_slice(),
            round: *round,
            lifecycles: faults.as_ref().map(|s| s.lifecycles()),
        };
        let members = if frontier.active_all {
            None
        } else {
            Some(frontier.active.as_slice())
        };
        step_sparse(ctx, nodes, 0, members, &mut shards[0]);
    }

    /// Post-step bookkeeping shared by the sequential and parallel paths:
    /// fold shard deltas, rebuild the inbox arena for the next round, resolve
    /// every channel's slot, and advance the clock.
    fn finish_round(&mut self) {
        let mut delta = 0isize;
        let mut stepped = 0u64;
        for shard in &mut self.shards {
            delta += std::mem::take(&mut shard.done_delta);
            stepped += std::mem::take(&mut shard.stepped);
        }
        self.done_count = self
            .done_count
            .checked_add_signed(delta)
            .expect("done count balances");
        self.stepped_last_round = stepped;
        self.total_stepped += stepped;

        match &mut self.frontier {
            Some(frontier) => {
                // Record which nodes stepped (shards hold contiguous index
                // ranges, so shard order is ascending) and fold the round's
                // `wake_me` requests into the next frontier.
                self.last_stepped.clear();
                for shard in &mut self.shards {
                    self.last_stepped.append(&mut shard.stepped_list);
                    for v in shard.outbox.wakes.drain(..) {
                        frontier.wake(v.index());
                    }
                }
            }
            None => {
                for shard in &mut self.shards {
                    shard.stepped_list.clear();
                    shard.outbox.wakes.clear();
                }
            }
        }

        let messages = if self.frontier.is_some() {
            self.rebuild_arena_sparse()
        } else {
            self.rebuild_arena()
        };
        self.cost.add_messages(messages);
        self.resolve_channels();
        // Slot wakeups: a non-idle outcome — message slot *or* lane
        // sub-slot — is channel feedback that every *attached* node observes
        // next round, so those nodes must step.
        if self.nonidle_slots > 0 || self.nonidle_lanes > 0 {
            if let Some(frontier) = &mut self.frontier {
                let mut nonidle_mask = 0u64;
                for (c, outcome) in self.slot_outcomes.iter().enumerate() {
                    if !matches!(outcome, ChannelOutcome::Idle) {
                        nonidle_mask |= 1 << c;
                    }
                }
                for (c, lanes) in self.prev_lanes.iter().enumerate() {
                    if !lanes.is_idle() {
                        nonidle_mask |= 1 << c;
                    }
                }
                match self.channels.masks_table() {
                    // Uniform attachment: everyone hears the feedback.
                    None => frontier.wake_all(),
                    Some(masks) => {
                        for (v, &mask) in masks.iter().enumerate() {
                            if mask & nonidle_mask != 0 {
                                frontier.wake(v);
                            }
                        }
                    }
                }
            }
        }
        self.round += 1;
    }

    /// Resolves one slot per channel from the merged channel writes (staged
    /// as handles into the freshly rotated delivery arena by
    /// [`SyncEngine::rebuild_arena`]): the winner's outcome carries its
    /// `PayloadHandle`, so no message is cloned — the handle resolves in the
    /// next round's steps and the payload expires with its epoch like any
    /// delivered send.  Pooled counters only; O(K + writes).
    fn resolve_channels(&mut self) {
        self.chan_counts.fill(0);
        // First write per channel wins the `Success` slot; with more writers
        // the outcome is a collision regardless, so tracking the first is
        // order-independent (pinned by `tests/channel_properties.rs`).
        for &(chan, from, handle) in &self.chan_writes {
            let c = chan.index();
            self.chan_counts[c] += 1;
            if self.chan_counts[c] == 1 {
                self.slot_outcomes[c] = ChannelOutcome::Success { from, handle };
            } else {
                self.slot_outcomes[c] = ChannelOutcome::Collision;
            }
        }
        // Lane sub-slots OR-merge instead of colliding: fold the staged
        // words per channel (order-independent — OR is commutative).
        self.lane_counts.fill(0);
        for &(chan, _, word) in &self.lane_writes {
            let c = chan.index();
            if self.lane_counts[c] == 0 {
                self.lane_accum[c] = word;
            } else {
                self.lane_accum[c] |= word;
            }
            self.lane_counts[c] += 1;
        }
        self.cost.add_round();
        self.nonidle_slots = 0;
        for (c, &count) in self.chan_counts.iter().enumerate() {
            self.chan_cost[c].add_round();
            if count == 0 {
                // An idle slot can never be erased: erasure models the loss
                // of a transmission, and nothing was transmitted.
                self.slot_outcomes[c] = ChannelOutcome::Idle;
                self.cost.add_channel_slot(0);
                self.chan_cost[c].add_channel_slot(0);
            } else if self
                .faults
                .as_ref()
                .is_some_and(|s| s.erases_slot(self.round, ChannelId(c as u16)))
            {
                // Erasure at the resolve boundary: the winner's payload (if
                // any) is discarded — its handle simply expires with the
                // delivery epoch — and every attached listener observes the
                // distinguished `Erased` feedback next round.
                self.slot_outcomes[c] = ChannelOutcome::Erased;
                self.nonidle_slots += 1;
                self.cost.add_erased_slot(u64::from(count));
                self.chan_cost[c].add_erased_slot(u64::from(count));
            } else {
                self.nonidle_slots += 1;
                self.cost.add_channel_slot(u64::from(count));
                self.chan_cost[c].add_channel_slot(u64::from(count));
            }
        }
        // Lane sub-slots: idle lanes cost nothing (see
        // [`CostAccount::lanes_busy`]); an erasure shares the channel's slot
        // draw — the round's transmission on that channel is lost as a
        // whole — and corruption flips one seeded bit of the resolved word
        // at this boundary, so every hearer observes the same word.
        self.nonidle_lanes = 0;
        for (c, &count) in self.lane_counts.iter().enumerate() {
            if count == 0 {
                self.prev_lanes[c] = LaneOutcome::Idle;
            } else if self
                .faults
                .as_ref()
                .is_some_and(|s| s.erases_slot(self.round, ChannelId(c as u16)))
            {
                self.prev_lanes[c] = LaneOutcome::Erased;
                self.nonidle_lanes += 1;
                self.cost.add_erased_lanes(u64::from(count));
                self.chan_cost[c].add_erased_lanes(u64::from(count));
            } else {
                let mut word = self.lane_accum[c];
                if let Some(bit) = self
                    .faults
                    .as_ref()
                    .and_then(|s| s.corrupts_lane(self.round, ChannelId(c as u16)))
                {
                    word ^= 1u64 << bit;
                    self.cost.add_corrupted_payloads(1);
                    self.chan_cost[c].add_corrupted_payloads(1);
                }
                self.prev_lanes[c] = LaneOutcome::Word(word);
                self.nonidle_lanes += 1;
                self.cost.add_lane_slot(u64::from(count));
                self.chan_cost[c].add_lane_slot(u64::from(count));
            }
        }
        self.chan_writes.clear();
        self.lane_writes.clear();
    }

    /// Shared prologue of the dense and sparse arena rebuilds: rotates the
    /// payload epoch — the payloads delivered this round expire (heap
    /// payloads move to the graveyard for recycling) and the staging arena
    /// becomes the delivery arena for the next round, a wholesale swap
    /// sequentially, a worker-order merge with handle rebasing under the
    /// `parallel` feature — then merges the worker shards' channel writes
    /// and staged sends in node-index order (into `shards[0]`) and applies
    /// message drops at the delivery boundary.  Returns the pre-drop staged
    /// count.
    fn rotate_and_merge(&mut self) -> u64 {
        // ---- Payload epoch rotation. ---------------------------------------
        self.payloads.expire();
        if self.shards.len() == 1 {
            // Sequential: the staging arena (with this round's payloads)
            // becomes the delivery arena; the expired delivery arena — its
            // graveyard now holding the recyclable payloads — becomes the
            // staging arena of the next round.
            std::mem::swap(&mut self.payloads, &mut self.shards[0].outbox.arena);
        } else {
            // Parallel: hand the expired heap payloads back to the staging
            // arenas senders actually intern into, then merge the per-worker
            // staging arenas into the delivery arena in worker order,
            // rebasing each worker's handles by its merge offset.
            let workers = self.shards.len();
            let mut next = 0usize;
            while let Some(p) = self.payloads.recycle() {
                self.shards[next % workers].outbox.arena.donate(p);
                next += 1;
            }
            for shard in &mut self.shards {
                let offset = shard.outbox.arena.drain_live_into(&mut self.payloads);
                if offset != 0 {
                    for entry in &mut shard.outbox.entries {
                        entry.2 = PayloadHandle(entry.2 .0 + offset);
                    }
                    for write in &mut shard.outbox.chan_writes {
                        write.2 = PayloadHandle(write.2 .0 + offset);
                    }
                }
            }
        }

        // Merge the staged channel writes in shard (= node-index) order; the
        // handles now resolve in the rotated delivery arena, ready for
        // `resolve_channels`.
        debug_assert!(self.chan_writes.is_empty());
        for shard in &mut self.shards {
            self.chan_writes.append(&mut shard.outbox.chan_writes);
        }

        // Lane words are bare `u64`s — no handles to rebase, so the merge is
        // a plain append in shard (= node-index) order.
        debug_assert!(self.lane_writes.is_empty());
        for shard in &mut self.shards {
            self.lane_writes.append(&mut shard.outbox.lane_writes);
        }

        // Merge worker shards in node-index order (no-op sequentially).
        let (first, rest) = self.shards.split_at_mut(1);
        let stage = &mut first[0].outbox.entries;
        for shard in rest {
            stage.append(&mut shard.outbox.entries);
        }

        // Message drops apply at the delivery boundary: a dropped message
        // was *sent* (it is counted in `p2p_messages` via the pre-drop
        // total) but never reaches the receiver's inbox arena.  The retained
        // order is unchanged (`retain` is stable), and the dropped payloads
        // expire with the staging epoch like any undelivered handle.
        let staged = stage.len();
        if let Some(session) = &self.faults {
            let round = self.round;
            stage.retain(|&(to, from, _)| !session.drops_message(round, from, to));
            let dropped = staged - stage.len();
            if dropped > 0 {
                self.cost.add_dropped_messages(dropped as u64);
            }
        }
        staged as u64
    }

    /// Buckets the staged sends by receiver into the inbox arena (CSR form)
    /// and returns how many messages were staged.
    ///
    /// Stable counting bucket via per-receiver chains: iterating a staging
    /// slice in reverse while prepending to each receiver's chain leaves
    /// every chain in forward (sender-index) order; walking receivers in
    /// ascending order then yields the arena already grouped and ordered,
    /// using only pooled buffers.  Large graphs first radix-partition the
    /// staging buffer into contiguous receiver blocks so the chain pass
    /// works on cache-resident slices (see the module docs).
    fn rebuild_arena(&mut self) -> u64 {
        let staged = self.rotate_and_merge();
        let stage = &mut self.shards[0].outbox.entries;
        let k = stage.len();
        let n = self.heads.len();
        assert!(k < NIL as usize, "more than 2^32 - 1 messages in one round");
        let shift = self.block_shift;

        self.arena.clear();
        self.arena.reserve(k);
        self.links.clear();
        self.links.resize(k, NIL);

        // Locality probe: one streaming pass counting block-level backward
        // jumps in the receiver sequence.  Local topologies (ring, grid,
        // clustered) stage receivers almost block-monotonically — the
        // single-pass chain bucket is then already cache-friendly and the
        // radix partition would be pure overhead — while index-random
        // topologies jump backward on ~half the consecutive pairs.
        let disordered = n >= RADIX_MIN_NODES && k > 0 && {
            let mut jumps = 0usize;
            let mut prev_block = 0usize;
            for entry in stage.iter() {
                let b = entry.0.index() >> shift;
                jumps += usize::from(b < prev_block);
                prev_block = b;
            }
            jumps * 8 >= k
        };

        if disordered {
            // ---- Pass 1: stable scatter into receiver blocks. -------------
            let blocks = n.div_ceil(1 << shift);
            self.block_cursors.clear();
            self.block_cursors.resize(blocks + 1, 0);
            for entry in stage.iter() {
                self.block_cursors[(entry.0.index() >> shift) + 1] += 1;
            }
            for b in 1..=blocks {
                self.block_cursors[b] += self.block_cursors[b - 1];
            }
            if self.scratch.len() < k {
                self.scratch
                    .resize(k, (NodeId(0), NodeId(0), PayloadHandle::DANGLING));
            }
            for entry in stage.iter() {
                let b = entry.0.index() >> shift;
                let pos = self.block_cursors[b] as usize;
                self.block_cursors[b] += 1;
                self.scratch[pos] = *entry;
            }
            // After the scatter, `block_cursors[b]` is the end of block `b`
            // (and hence the start of block `b + 1`).

            // ---- Pass 2: chain-bucket each block (cache-resident). --------
            for b in 0..blocks {
                let start = if b == 0 {
                    0
                } else {
                    self.block_cursors[b - 1] as usize
                };
                let end = self.block_cursors[b] as usize;
                let lo = b << shift;
                let hi = (lo + (1 << shift)).min(n);
                self.heads[lo..hi].fill(NIL);
                for i in (start..end).rev() {
                    let to = self.scratch[i].0.index();
                    self.links[i] = self.heads[to];
                    self.heads[to] = i as u32;
                }
                for v in lo..hi {
                    self.offsets[v] = self.arena.len();
                    let mut i = self.heads[v];
                    while i != NIL {
                        let (_, from, handle) = self.scratch[i as usize];
                        self.arena.push((from, handle));
                        i = self.links[i as usize];
                    }
                }
            }
        } else {
            // ---- Small graphs / block-local traffic: single-pass bucket. --
            self.heads.fill(NIL);
            for i in (0..k).rev() {
                let to = stage[i].0.index();
                self.links[i] = self.heads[to];
                self.heads[to] = i as u32;
            }
            for v in 0..n {
                self.offsets[v] = self.arena.len();
                let mut i = self.heads[v];
                while i != NIL {
                    let (_, from, handle) = stage[i as usize];
                    self.arena.push((from, handle));
                    i = self.links[i as usize];
                }
            }
        }
        self.offsets[n] = self.arena.len();
        stage.clear();
        staged
    }

    /// Sparse counterpart of [`SyncEngine::rebuild_arena`]: O(messages), not
    /// O(n).  Instead of rewriting the full `offsets` index, only the
    /// receivers actually touched this round get a fresh `(start, len)`
    /// range stamped with the new arena epoch — every other node's stale
    /// stamp *is* its empty inbox, so idle nodes are never iterated.  Each
    /// touched receiver is also woken onto the next frontier.
    ///
    /// Relies on (and restores) the all-`NIL` chain-head invariant: the
    /// dense paths re-fill `heads` wholesale, which a sparse round cannot
    /// afford.
    fn rebuild_arena_sparse(&mut self) -> u64 {
        let staged = self.rotate_and_merge();
        let SyncEngine {
            shards,
            arena,
            links,
            heads,
            touched,
            inbox_epoch,
            inbox_ranges,
            arena_epoch,
            frontier,
            ..
        } = self;
        let stage = &mut shards[0].outbox.entries;
        let k = stage.len();
        assert!(k < NIL as usize, "more than 2^32 - 1 messages in one round");

        arena.clear();
        arena.reserve(k);
        links.clear();
        links.resize(k, NIL);
        *arena_epoch += 1;
        touched.clear();

        // Reverse chain build, as in the dense bucket; the first prepend to
        // an empty chain is what discovers a touched receiver, so the pass
        // is O(messages) with no per-node scan.
        for i in (0..k).rev() {
            let to = stage[i].0.index();
            if heads[to] == NIL {
                touched.push(to as u32);
            }
            links[i] = heads[to];
            heads[to] = i as u32;
        }

        // Walk each touched receiver's chain (forward = sender-index order,
        // because sparse stepping visits senders ascending).  Receiver walk
        // order is irrelevant: the ranges are independent and the frontier
        // dedups through its bitset.
        let frontier = frontier.as_mut().expect("sparse mode");
        for &t in touched.iter() {
            let to = t as usize;
            let start = arena.len() as u32;
            let mut i = heads[to];
            while i != NIL {
                let (_, from, handle) = stage[i as usize];
                arena.push((from, handle));
                i = links[i as usize];
            }
            inbox_ranges[to] = (start, arena.len() as u32 - start);
            inbox_epoch[to] = *arena_epoch;
            heads[to] = NIL;
            frontier.wake(to);
        }
        stage.clear();
        staged
    }

    /// Runs until quiescence or until `max_rounds` rounds have elapsed in total.
    pub fn run(&mut self, max_rounds: u64) -> RunOutcome {
        while self.round < max_rounds {
            if self.is_quiescent() {
                return RunOutcome::Completed { rounds: self.round };
            }
            self.step_round();
        }
        if self.is_quiescent() {
            RunOutcome::Completed { rounds: self.round }
        } else {
            RunOutcome::RoundLimit { rounds: self.round }
        }
    }

    /// Runs until `predicate` over the node states becomes true, quiescence,
    /// or the round limit; returns the outcome as for [`SyncEngine::run`].
    ///
    /// Like [`SyncEngine::run`], the condition is re-checked after the final
    /// permitted round, so a predicate satisfied exactly on the last budgeted
    /// round reports [`RunOutcome::Completed`].
    pub fn run_until<F: FnMut(&[P]) -> bool>(
        &mut self,
        max_rounds: u64,
        mut predicate: F,
    ) -> RunOutcome {
        while self.round < max_rounds {
            if predicate(&self.nodes) || self.is_quiescent() {
                return RunOutcome::Completed { rounds: self.round };
            }
            self.step_round();
        }
        if predicate(&self.nodes) || self.is_quiescent() {
            RunOutcome::Completed { rounds: self.round }
        } else {
            RunOutcome::RoundLimit { rounds: self.round }
        }
    }

    /// Consumes the engine, returning the node states and the cost account.
    pub fn into_parts(self) -> (Vec<P>, CostAccount) {
        (self.nodes, self.cost)
    }
}

#[cfg(feature = "parallel")]
impl<'g, P> SyncEngine<'g, P>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
{
    /// Executes one round stepping nodes on up to `threads` scoped threads.
    ///
    /// Within a round every node only reads previous-round state (the inbox
    /// arena and the previous slot outcome), so intra-round stepping is
    /// embarrassingly parallel.  Nodes are split into contiguous index
    /// chunks, each with a private staging shard; the shards are merged in
    /// node-index order afterwards, so the result — node states, message
    /// order, slot outcomes, and [`CostAccount`] — is bit-for-bit identical
    /// to [`SyncEngine::step_round`].
    pub fn step_round_parallel(&mut self, threads: usize) {
        let n = self.nodes.len();
        let workers = threads.clamp(1, n.max(1));
        if workers <= 1 {
            return self.step_round();
        }
        while self.shards.len() < workers {
            self.shards.push(Shard::default());
        }
        self.apply_fault_round();
        if self.frontier.is_some() {
            self.step_frontier_parallel(workers);
            return self.finish_round();
        }
        let chunk_len = n.div_ceil(workers);
        let SyncEngine {
            graph,
            nodes,
            channels,
            arena,
            payloads,
            offsets,
            shards,
            slot_outcomes,
            prev_lanes,
            round,
            faults,
            ..
        } = self;
        let (graph, channels, arena, payloads, offsets, slot_outcomes, prev_lanes, round) = (
            &**graph,
            &*channels,
            &*arena,
            &*payloads,
            &*offsets,
            &*slot_outcomes,
            &*prev_lanes,
            *round,
        );
        let lifecycles = faults.as_ref().map(|s| s.lifecycles());
        std::thread::scope(|scope| {
            for (ci, (chunk, shard)) in nodes
                .chunks_mut(chunk_len)
                .zip(shards.iter_mut())
                .enumerate()
            {
                scope.spawn(move || {
                    step_chunk(
                        graph,
                        chunk,
                        ci * chunk_len,
                        arena,
                        payloads,
                        offsets,
                        channels,
                        slot_outcomes,
                        prev_lanes,
                        round,
                        lifecycles,
                        shard,
                    );
                });
            }
        });
        self.finish_round();
    }

    /// Parallel sparse step: shards the **frontier** (not the node range)
    /// across the workers.  The active list is sorted ascending, so equal
    /// contiguous slices of it cover disjoint, increasing node-index
    /// intervals — each worker gets the `nodes` sub-slice spanning its
    /// frontier slice, and merging the shards in worker order reproduces the
    /// sequential ascending step order bit-for-bit.
    fn step_frontier_parallel(&mut self, workers: usize) {
        let n = self.nodes.len();
        let SyncEngine {
            graph,
            nodes,
            channels,
            arena,
            payloads,
            shards,
            slot_outcomes,
            prev_lanes,
            round,
            faults,
            frontier,
            inbox_epoch,
            inbox_ranges,
            arena_epoch,
            ..
        } = self;
        let frontier = frontier.as_mut().expect("sparse mode");
        frontier.advance();
        let ctx = SparseCtx {
            graph,
            arena: arena.as_slice(),
            payloads: &*payloads,
            inbox_epoch: inbox_epoch.as_slice(),
            inbox_ranges: inbox_ranges.as_slice(),
            arena_epoch: *arena_epoch,
            channels: &*channels,
            slot_outcomes: slot_outcomes.as_slice(),
            prev_lanes: prev_lanes.as_slice(),
            round: *round,
            lifecycles: faults.as_ref().map(|s| s.lifecycles()),
        };
        if frontier.active_all {
            // All-active round: plain contiguous node chunks, but stepped
            // through the sparse (epoch-lazy) inbox view.
            let chunk_len = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (ci, (chunk, shard)) in nodes
                    .chunks_mut(chunk_len)
                    .zip(shards.iter_mut())
                    .enumerate()
                {
                    scope.spawn(move || {
                        step_sparse(ctx, chunk, ci * chunk_len, None, shard);
                    });
                }
            });
            return;
        }
        let members = frontier.active.as_slice();
        if members.is_empty() {
            return;
        }
        let chunk_len = members.len().div_ceil(workers);
        std::thread::scope(|scope| {
            // Carve each worker's node sub-slice off the front of the
            // remainder: frontier slices are ascending and disjoint, so the
            // spanned node intervals never overlap.
            let mut rest = &mut nodes[..];
            let mut base = 0usize;
            for (slice, shard) in members.chunks(chunk_len).zip(shards.iter_mut()) {
                let lo = slice[0] as usize;
                let hi = slice[slice.len() - 1] as usize;
                let (_, tail) = rest.split_at_mut(lo - base);
                let (mine, tail) = tail.split_at_mut(hi - lo + 1);
                rest = tail;
                base = hi + 1;
                scope.spawn(move || {
                    step_sparse(ctx, mine, lo, Some(slice), shard);
                });
            }
        });
    }

    /// [`SyncEngine::run`], but stepping each round with
    /// [`SyncEngine::step_round_parallel`].  Deterministic: produces exactly
    /// the same outcome as the sequential run.
    pub fn run_parallel(&mut self, max_rounds: u64, threads: usize) -> RunOutcome {
        while self.round < max_rounds {
            if self.is_quiescent() {
                return RunOutcome::Completed { rounds: self.round };
            }
            self.step_round_parallel(threads);
        }
        if self.is_quiescent() {
            RunOutcome::Completed { rounds: self.round }
        } else {
            RunOutcome::RoundLimit { rounds: self.round }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SlotOutcome;
    use netsim_graph::generators;

    #[test]
    fn l2_probe_parses_wellformed_sysfs_sizes() {
        assert_eq!(parse_l2_size("512K\n"), Some(512 * 1024));
        assert_eq!(parse_l2_size("4096K"), Some(4096 * 1024));
        assert_eq!(parse_l2_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_l2_size("2m"), Some(2 * 1024 * 1024));
        assert_eq!(parse_l2_size("  262144  "), Some(262_144));
    }

    #[test]
    fn l2_probe_rejects_garbled_sysfs_without_panicking() {
        // Missing/masked sysfs surfaces as a read error upstream; a present
        // but garbled file must parse to None, never panic.
        for garbage in ["", "\n", "abc", "K", "12Q", "-512K", "1.5M", "0", "0K"] {
            assert_eq!(parse_l2_size(garbage), None, "input {garbage:?}");
        }
        // Overflow: u64::MAX kibibytes does not fit in u64 bytes.
        assert_eq!(parse_l2_size("18446744073709551615K"), None);
    }

    #[test]
    fn block_shift_is_always_clamped() {
        // Tiny, huge, and boundary L2 sizes all land inside the range, so a
        // failed or absurd probe can never produce a degenerate radix pass.
        for bytes in [1, 256, 1 << 17, 1 << 21, 1 << 30, u64::MAX] {
            let shift = block_shift_for_l2(bytes);
            assert!(
                (BLOCK_SHIFT_RANGE.0..=BLOCK_SHIFT_RANGE.1).contains(&shift),
                "l2={bytes} gave shift {shift}"
            );
        }
        // 512 KiB L2 -> 2048-node blocks, the hard-coded default.
        assert_eq!(block_shift_for_l2(512 * 1024), DEFAULT_BLOCK_SHIFT);
        let tuned = tuned_block_shift();
        assert!((BLOCK_SHIFT_RANGE.0..=BLOCK_SHIFT_RANGE.1).contains(&tuned));
    }

    /// Node 0 writes to the channel every round; all others listen and record
    /// the first message heard.
    struct Beacon {
        id: NodeId,
        heard: Option<u64>,
        done: bool,
    }

    impl Protocol for Beacon {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            if let SlotOutcome::Success { msg, .. } = io.prev_slot() {
                if self.heard.is_none() {
                    self.heard = Some(*msg);
                }
                self.done = true;
            }
            if self.id == NodeId(0) && !self.done {
                io.write_channel(99);
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn single_writer_broadcast_reaches_all() {
        let g = generators::ring(6);
        let mut eng = SyncEngine::new(&g, |id| Beacon {
            id,
            heard: None,
            done: false,
        });
        let out = eng.run(10);
        assert!(out.is_completed());
        for v in g.nodes() {
            assert_eq!(eng.node(v).heard, Some(99));
        }
        assert!(eng.cost().slots_success >= 1);
        assert_eq!(eng.cost().p2p_messages, 0);
    }

    /// All nodes write in round 0: a collision must be observed.
    struct Collider {
        saw_collision: bool,
    }
    impl Protocol for Collider {
        type Msg = u8;
        fn step(&mut self, io: &mut RoundIo<'_, u8>) {
            if io.round() == 0 {
                io.write_channel(1);
            }
            if io.prev_slot().is_collision() {
                self.saw_collision = true;
            }
        }
        fn is_done(&self) -> bool {
            self.saw_collision
        }
    }

    #[test]
    fn simultaneous_writes_collide() {
        let g = generators::complete(4);
        let mut eng = SyncEngine::new(&g, |_| Collider {
            saw_collision: false,
        });
        let out = eng.run(5);
        assert!(out.is_completed());
        assert_eq!(eng.cost().slots_collision, 1);
        assert_eq!(eng.cost().channel_writes, 4);
        for v in g.nodes() {
            assert!(eng.node(v).saw_collision);
        }
    }

    /// Writes its tag on its assigned channel in round 0 and records what it
    /// hears on every channel it can see.
    struct ShardBeacon {
        chan: ChannelId,
        heard: Vec<(u16, u64)>,
        rounds: u32,
    }
    impl Protocol for ShardBeacon {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            for c in 0..io.channels() {
                if let SlotOutcome::Success { msg, .. } = io.prev_slot_on(ChannelId(c)) {
                    self.heard.push((c, *msg));
                }
            }
            if io.round() == 0 {
                io.write_channel_on(self.chan, 100 + u64::from(self.chan.0));
            }
            self.rounds += 1;
        }
        fn is_done(&self) -> bool {
            self.rounds >= 2
        }
    }

    #[test]
    fn channels_resolve_independently() {
        // Four nodes, two channels, uniform attachment: two disjoint writer
        // pairs would collide on one channel but succeed on two.
        let g = generators::complete(4);
        let mut eng = SyncEngine::with_channels(&g, ChannelSet::uniform(2), |id| ShardBeacon {
            chan: ChannelId((id.index() % 2) as u16),
            heard: Vec::new(),
            rounds: 0,
        });
        let out = eng.run(10);
        assert!(out.is_completed());
        // Two writers per channel -> both channels collide; nobody hears a
        // success.
        assert_eq!(eng.cost().slots_collision, 2);
        assert_eq!(eng.cost().channel_writes, 4);
        for v in g.nodes() {
            assert!(eng.node(v).heard.is_empty());
        }
        assert_eq!(eng.last_slot_state(ChannelId(0)), SlotState::Idle);

        // Sharded attachment: each node only writes/hears its own channel,
        // so each channel has exactly two writers again — but with four
        // channels every write succeeds.
        let sharded = ChannelSet::sharded(4, 4, |v| ChannelId(v.index() as u16));
        let mut eng = SyncEngine::with_channels(&g, sharded, |id| ShardBeacon {
            chan: ChannelId(id.index() as u16),
            heard: Vec::new(),
            rounds: 0,
        });
        let out = eng.run(10);
        assert!(out.is_completed());
        assert_eq!(eng.cost().slots_success, 4);
        for v in g.nodes() {
            // Attached to its own channel only: hears exactly its own beacon.
            let c = v.index() as u16;
            assert_eq!(eng.node(v).heard, vec![(c, 100 + u64::from(c))]);
        }
    }

    /// Every node writes its id bit on the lane sub-slot of round 0 and
    /// records the OR-merged word it hears back.
    struct LaneMarker {
        id: NodeId,
        heard: Option<LaneOutcome>,
    }
    impl Protocol for LaneMarker {
        type Msg = ();
        fn step(&mut self, io: &mut RoundIo<'_, ()>) {
            if io.round() == 0 {
                io.write_lanes_on(ChannelId(0), 1 << self.id.index());
            }
            if !io.prev_lanes_on(ChannelId(0)).is_idle() && self.heard.is_none() {
                self.heard = Some(io.prev_lanes_on(ChannelId(0)));
            }
        }
        fn is_done(&self) -> bool {
            self.heard.is_some()
        }
    }

    #[test]
    fn lane_writes_or_merge_and_block_quiescence() {
        let g = generators::complete(5);
        let mut eng = SyncEngine::new(&g, |id| LaneMarker { id, heard: None });
        let out = eng.run(10);
        assert!(out.is_completed());
        // Five simultaneous lane writers OR-merge instead of colliding, and
        // the busy lane keeps the engine alive one more round so everyone
        // hears the merged word.
        for v in g.nodes() {
            assert_eq!(eng.node(v).heard, Some(LaneOutcome::Word(0b11111)));
        }
        assert_eq!(eng.cost().lane_writes, 5);
        assert_eq!(eng.cost().lanes_busy, 1);
        assert_eq!(eng.cost().lanes_erased, 0);
        assert_eq!(eng.cost().slots_collision, 0);
        assert_eq!(eng.cost().channel_writes, 0);
        assert_eq!(eng.last_lanes(ChannelId(0)), LaneOutcome::Idle);
    }

    #[test]
    fn lane_corruption_flips_one_seeded_bit() {
        let g = generators::complete(3);
        let plan = FaultPlan::none().with_corruption(1.0);
        let expected_bit = plan
            .corrupts_lane(0, ChannelId(0))
            .expect("rate 1.0 must fire");
        let mut eng = SyncEngine::new(&g, |id| LaneMarker { id, heard: None });
        eng.set_fault_plan(plan);
        let out = eng.run(10);
        assert!(out.is_completed());
        let expected = 0b111u64 ^ (1 << expected_bit);
        for v in g.nodes() {
            assert_eq!(eng.node(v).heard, Some(LaneOutcome::Word(expected)));
        }
        assert!(eng.cost().corrupted_payloads >= 1);
    }

    #[test]
    fn per_round_slot_accounting_covers_every_channel() {
        let g = generators::ring(4);
        let mut eng = SyncEngine::with_channels(&g, ChannelSet::uniform(3), |_| Collider {
            saw_collision: false,
        });
        let out = eng.run(5);
        assert!(out.is_completed());
        // Every round resolves three slots; only channel 0 ever collides.
        assert_eq!(
            eng.cost().slots_idle + eng.cost().slots_success + eng.cost().slots_collision,
            3 * eng.cost().rounds
        );
        assert_eq!(eng.cost().slots_collision, 1);
    }

    /// Flood a token from node 0 over the point-to-point network only.
    struct Flood {
        have: bool,
        sent: bool,
    }
    impl Protocol for Flood {
        type Msg = ();
        fn step(&mut self, io: &mut RoundIo<'_, ()>) {
            if !io.inbox().is_empty() {
                self.have = true;
            }
            if self.have && !self.sent {
                io.send_all(());
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.have
        }
    }

    #[test]
    fn flooding_takes_diameter_rounds() {
        let g = generators::path(8);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        let out = eng.run(100);
        assert!(out.is_completed());
        // Token must travel 7 hops; each hop takes one round, plus the final
        // quiescence check round.
        assert!(out.rounds() >= 7);
        assert!(out.rounds() <= 9);
        // Each node forwards once to all neighbours: total messages = sum of degrees = 2m.
        assert_eq!(eng.cost().p2p_messages, 2 * g.edge_count() as u64);
    }

    #[test]
    fn round_limit_is_reported() {
        struct Never;
        impl Protocol for Never {
            type Msg = ();
            fn step(&mut self, _io: &mut RoundIo<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::path(3);
        let mut eng = SyncEngine::new(&g, |_| Never);
        let out = eng.run(4);
        assert!(!out.is_completed());
        assert_eq!(out.rounds(), 4);
        assert_eq!(eng.round(), 4);
    }

    #[test]
    fn run_until_predicate() {
        let g = generators::path(5);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        let out = eng.run_until(100, |nodes| nodes.iter().filter(|n| n.have).count() >= 3);
        assert!(out.is_completed());
        assert!(out.rounds() <= 4);
        let (nodes, cost) = eng.into_parts();
        assert_eq!(nodes.len(), 5);
        assert!(cost.rounds >= 2);
    }

    #[test]
    fn run_until_predicate_met_on_last_budgeted_round() {
        // On a path, the flood reaches a third node during the third step
        // (round index 2); a budget of exactly 3 rounds must still report
        // completion via the post-loop re-check.
        let g = generators::path(5);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        let out = eng.run_until(3, |nodes| nodes.iter().filter(|n| n.have).count() >= 3);
        assert!(out.is_completed());
        assert_eq!(out.rounds(), 3);
    }

    /// Every node sends a distinct tag to every neighbour each round; the
    /// inbox must arrive ordered by sender index.  The sortedness check
    /// copies the senders into a **pooled** scratch vector (reused across
    /// rounds), so the checker itself is allocation-free in steady state and
    /// can run inside the alloc-counting tests.
    struct OrderCheck {
        rounds_left: u32,
        ok: bool,
        scratch: Vec<usize>,
    }
    impl OrderCheck {
        fn new(rounds_left: u32) -> Self {
            OrderCheck {
                rounds_left,
                ok: true,
                scratch: Vec::new(),
            }
        }
    }
    impl Protocol for OrderCheck {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            self.scratch.clear();
            self.scratch
                .extend(io.inbox().iter().map(|(from, _)| from.index()));
            self.scratch.sort_unstable();
            let in_order = io
                .inbox()
                .iter()
                .zip(self.scratch.iter())
                .all(|((from, _), &sorted)| from.index() == sorted);
            if !in_order {
                self.ok = false;
            }
            for (msg_from, &tag) in io.inbox() {
                if tag != msg_from.index() as u64 {
                    self.ok = false;
                }
            }
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                let me = io.id().index() as u64;
                io.send_all(me);
            }
        }
        fn is_done(&self) -> bool {
            self.rounds_left == 0
        }
    }

    #[test]
    fn inbox_ordered_by_sender_index() {
        let g = generators::complete(7);
        let mut eng = SyncEngine::new(&g, |_| OrderCheck::new(5));
        let out = eng.run(50);
        assert!(out.is_completed());
        for v in g.nodes() {
            assert!(eng.node(v).ok, "inbox of {v:?} out of sender order");
        }
    }

    /// Forces the radix-partitioned scatter (n ≥ [`RADIX_MIN_NODES`] with
    /// index-random adjacency, so the locality probe reports disorder) and
    /// checks both halves of its contract: the inbox ordering is unchanged
    /// and the run is bit-for-bit equivalent to the reference engine.  Every
    /// other engine test stays far below the threshold, so without this the
    /// radix branch would never execute under CI.
    #[test]
    fn radix_scatter_keeps_order_and_matches_reference() {
        let n = RADIX_MIN_NODES; // boundary value: radix path active
        let g = netsim_graph::topologies::degree_bounded_expander(n, 4, 9);

        let mut eng = SyncEngine::new(&g, |_| OrderCheck::new(3));
        let out = eng.run(20);
        assert!(out.is_completed());
        for v in g.nodes() {
            assert!(eng.node(v).ok, "radix inbox of {v:?} out of sender order");
        }

        let init = |id: NodeId| Flood {
            have: id == NodeId(0),
            sent: false,
        };
        let mut fast = SyncEngine::new(&g, init);
        let mut slow = crate::ReferenceEngine::new(&g, init);
        let fast_out = fast.run(100);
        let slow_out = slow.run(100);
        assert_eq!(fast_out, slow_out);
        assert!(fast_out.is_completed());
        assert_eq!(fast.cost(), slow.cost());
        for v in g.nodes() {
            assert_eq!(fast.node(v).have, slow.node(v).have);
            assert_eq!(fast.node(v).sent, slow.node(v).sent);
        }
    }

    #[test]
    fn in_flight_and_quiescence_tracking() {
        let g = generators::path(4);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        assert!(!eng.is_quiescent());
        assert_eq!(eng.in_flight(), 0);
        eng.step_round(); // node 0 floods to node 1
        assert_eq!(eng.in_flight(), 1);
        let out = eng.run(100);
        assert!(out.is_completed());
        assert!(eng.is_quiescent());
        assert_eq!(eng.in_flight(), 0);
    }

    /// Node 0 writes once in round 0; everyone records the feedback they
    /// observe in round 1 and finishes.
    struct ErasedProbe {
        id: NodeId,
        observed: Option<SlotState>,
        done: bool,
    }
    impl Protocol for ErasedProbe {
        type Msg = u64;
        fn step(&mut self, io: &mut RoundIo<'_, u64>) {
            if io.round() == 0 && self.id == NodeId(0) {
                io.write_channel(7);
            }
            if io.round() == 1 {
                self.observed = Some(SlotState::from(io.prev_slot()));
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn certain_erasure_turns_success_into_erased_feedback() {
        let g = generators::complete(4);
        let mut eng = SyncEngine::new(&g, |id| ErasedProbe {
            id,
            observed: None,
            done: false,
        });
        eng.set_fault_plan(FaultPlan::from_rates(11, 1.0, 0.0, 0.0, 0.0));
        let out = eng.run(10);
        assert!(out.is_completed());
        for v in g.nodes() {
            assert_eq!(eng.node(v).observed, Some(SlotState::Erased));
        }
        // The write happened (and is charged), but the slot was erased —
        // never a success — and idle slots are never erased.
        assert_eq!(eng.cost().erased_slots, 1);
        assert_eq!(eng.cost().channel_writes, 1);
        assert_eq!(eng.cost().slots_success, 0);
        assert_eq!(eng.cost().slots_idle, eng.cost().rounds - 1);
        assert_eq!(eng.last_slot_state(ChannelId::DEFAULT), SlotState::Idle);
    }

    #[test]
    fn certain_drops_sever_the_point_to_point_medium() {
        let g = generators::path(4);
        let mut eng = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        eng.set_fault_plan(FaultPlan::from_rates(5, 0.0, 1.0, 0.0, 0.0));
        let out = eng.run(6);
        // The token can never propagate: every copy is dropped at the
        // delivery boundary.
        assert!(!out.is_completed());
        for v in g.nodes().skip(1) {
            assert!(!eng.node(v).have);
        }
        // Sends are charged at the send point; drops are charged on top
        // (node 0 has one neighbour on a path, so it sends one copy).
        assert_eq!(eng.cost().p2p_messages, 1);
        assert_eq!(eng.cost().dropped_messages, 1);
        assert_eq!(eng.in_flight(), 0);
    }

    /// Counts its own steps; `on_recover` records that the hook fired.
    struct Ticker {
        steps: u64,
        recovered: bool,
        goal: u64,
    }
    impl Protocol for Ticker {
        type Msg = ();
        fn step(&mut self, _io: &mut RoundIo<'_, ()>) {
            self.steps += 1;
        }
        fn is_done(&self) -> bool {
            self.steps >= self.goal
        }
        fn on_recover(&mut self) {
            self.recovered = true;
        }
    }

    #[test]
    fn scheduled_crash_skips_steps_and_recover_rejoins() {
        use crate::fault::FaultEvent;
        let g = generators::ring(3);
        let mut eng = SyncEngine::new(&g, |_| Ticker {
            steps: 0,
            recovered: false,
            goal: 8,
        });
        eng.set_fault_plan(FaultPlan::none().with_events(vec![
            FaultEvent::Crash {
                round: 2,
                node: NodeId(1),
            },
            FaultEvent::Recover {
                round: 5,
                node: NodeId(1),
            },
        ]));
        let out = eng.run(30);
        assert!(out.is_completed());
        // Node 1 misses rounds 2..=5 (crashed 2-4, booting 5), so it reaches
        // its 8-step goal four rounds after the others: steps at 0,1,6..=11.
        assert_eq!(out.rounds(), 12);
        assert_eq!(eng.node(NodeId(1)).steps, 8);
        assert!(eng.node(NodeId(1)).recovered);
        assert!(!eng.node(NodeId(0)).recovered);
        assert_eq!(eng.fault_lifecycle(NodeId(1)), NodeLifecycle::Operational);
        // Churn accounting: one non-operational node for rounds 2..=5.
        assert_eq!(eng.cost().crashed_rounds, 4);
    }

    #[test]
    fn permanent_crash_is_exempt_from_quiescence() {
        use crate::fault::FaultEvent;
        let g = generators::ring(3);
        let mut eng = SyncEngine::new(&g, |_| Ticker {
            steps: 0,
            recovered: false,
            goal: 3,
        });
        eng.set_fault_plan(FaultPlan::none().with_events(vec![FaultEvent::Crash {
            round: 1,
            node: NodeId(2),
        }]));
        let out = eng.run(20);
        // Node 2 can never report done, but a crashed node is exempt: the
        // run completes once the survivors finish.
        assert!(out.is_completed());
        assert_eq!(eng.node(NodeId(2)).steps, 1);
        assert!(!eng.node(NodeId(2)).is_done());
        assert_eq!(eng.fault_lifecycle(NodeId(2)), NodeLifecycle::Crashed);
    }

    /// A `wake_me`-adopting [`Ticker`]: arms itself every round until done,
    /// so it is frontier-safe under active-set stepping.
    struct ArmedTicker {
        steps: u64,
        recovered: bool,
        goal: u64,
    }
    impl Protocol for ArmedTicker {
        type Msg = ();
        fn step(&mut self, io: &mut RoundIo<'_, ()>) {
            self.steps += 1;
            if !self.is_done() {
                io.wake_me();
            }
        }
        fn is_done(&self) -> bool {
            self.steps >= self.goal
        }
        fn on_recover(&mut self) {
            self.recovered = true;
        }
    }

    #[test]
    fn sparse_crash_on_frontier_leaks_no_done_count() {
        use crate::fault::FaultEvent;
        // Node 1 arms itself every round, so it is *on the frontier* when the
        // crash lands: the sparse step must skip it with no done-count delta
        // (its frontier slot simply expires), quiescence accounting must stay
        // sound, and the recovery boot promotion must re-add it — replaying
        // the dense `scheduled_crash_skips_steps_and_recover_rejoins` run
        // round for round.
        let g = generators::ring(3);
        let mut eng = SyncEngine::new(&g, |_| ArmedTicker {
            steps: 0,
            recovered: false,
            goal: 8,
        });
        eng.enable_sparse_stepping();
        eng.set_fault_plan(FaultPlan::none().with_events(vec![
            FaultEvent::Crash {
                round: 2,
                node: NodeId(1),
            },
            FaultEvent::Recover {
                round: 5,
                node: NodeId(1),
            },
        ]));
        let out = eng.run(30);
        assert!(out.is_completed());
        assert_eq!(out.rounds(), 12);
        assert_eq!(eng.node(NodeId(1)).steps, 8);
        assert!(eng.node(NodeId(1)).recovered);
        assert!(!eng.node(NodeId(0)).recovered);
        assert_eq!(eng.fault_lifecycle(NodeId(1)), NodeLifecycle::Operational);
        assert_eq!(eng.cost().crashed_rounds, 4);
        // The crashed rounds stepped two nodes, not three.
        assert_eq!(eng.total_stepped(), 3 * 8);
    }

    #[test]
    fn sparse_permanent_crash_stays_exempt_and_completes() {
        use crate::fault::FaultEvent;
        let g = generators::ring(3);
        let mut eng = SyncEngine::new(&g, |_| ArmedTicker {
            steps: 0,
            recovered: false,
            goal: 3,
        });
        eng.enable_sparse_stepping();
        eng.set_fault_plan(FaultPlan::none().with_events(vec![FaultEvent::Crash {
            round: 1,
            node: NodeId(2),
        }]));
        let out = eng.run(20);
        // Node 2 crashes while armed and can never report done; the
        // exemption must still let the sparse run quiesce.
        assert!(out.is_completed());
        assert_eq!(eng.node(NodeId(2)).steps, 1);
        assert!(!eng.node(NodeId(2)).is_done());
        assert_eq!(eng.fault_lifecycle(NodeId(2)), NodeLifecycle::Crashed);
    }

    #[test]
    fn sparse_stepping_actually_skips_idle_nodes() {
        use crate::protocols::BfsBuild;
        // BFS wave on a 64-ring: dense stepping pays n steps per round for
        // ~34 rounds; active-set stepping pays for the all-active round 0
        // plus O(wave frontier) per round.  The bound below fails by an
        // order of magnitude if the frontier ever degenerates to wake-all.
        let g = generators::ring(64);
        let mut dense = SyncEngine::new(&g, |v| BfsBuild::new(v, NodeId(0)));
        assert!(dense.run(100).is_completed());
        let mut eng = SyncEngine::new(&g, |v| BfsBuild::new(v, NodeId(0)));
        eng.enable_sparse_stepping();
        assert!(eng.sparse_stepping());
        let out = eng.run(100);
        assert!(out.is_completed());
        assert_eq!(out.rounds(), dense.round());
        for v in g.nodes() {
            assert_eq!(eng.node(v).depth(), dense.node(v).depth());
        }
        assert!(
            eng.total_stepped() < dense.total_stepped() / 4,
            "sparse run stepped {} nodes vs dense {}",
            eng.total_stepped(),
            dense.total_stepped()
        );
        // The final round steps only the last deliveries' receivers (the
        // two nodes where the wave fronts met), not the whole ring.
        assert!(eng.stepped_last_round() <= 4);
        assert_eq!(
            eng.last_stepped().map(<[u32]>::len),
            Some(eng.stepped_last_round() as usize)
        );
    }

    #[test]
    fn null_and_zero_rate_plans_change_nothing() {
        let g = generators::Family::RandomConnected.generate(40, 3);
        let run = |plan: Option<FaultPlan>| {
            let mut eng = SyncEngine::new(&g, |id| Flood {
                have: id == NodeId(0),
                sent: false,
            });
            if let Some(plan) = plan {
                eng.set_fault_plan(plan);
            }
            let out = eng.run(200);
            assert!(out.is_completed());
            let states: Vec<(bool, bool)> = eng.nodes().iter().map(|n| (n.have, n.sent)).collect();
            (out, *eng.cost(), states)
        };
        let bare = run(None);
        assert_eq!(run(Some(FaultPlan::none())), bare);
        assert_eq!(
            run(Some(FaultPlan::from_rates(9, 0.0, 0.0, 0.0, 0.0))),
            bare
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_faulted_run_matches_sequential() {
        let g = generators::Family::RingOfCliques.generate(120, 7);
        let plan = FaultPlan::from_rates(13, 0.1, 0.1, 0.02, 0.3);
        let init = |id: NodeId| Flood {
            have: id == NodeId(0),
            sent: false,
        };
        let mut seq = SyncEngine::new(&g, init);
        seq.set_fault_plan(plan.clone());
        let seq_out = seq.run(400);
        for threads in [2usize, 5] {
            let mut par = SyncEngine::new(&g, init);
            par.set_fault_plan(plan.clone());
            let par_out = par.run_parallel(400, threads);
            assert_eq!(seq_out, par_out);
            assert_eq!(seq.cost(), par.cost());
            for v in g.nodes() {
                assert_eq!(seq.node(v).have, par.node(v).have);
                assert_eq!(seq.fault_lifecycle(v), par.fault_lifecycle(v));
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_run_matches_sequential() {
        let g = generators::Family::Grid.generate(100, 3);
        let mut seq = SyncEngine::new(&g, |id| Flood {
            have: id == NodeId(0),
            sent: false,
        });
        let seq_out = seq.run(1000);
        for threads in [2usize, 3, 8] {
            let mut par = SyncEngine::new(&g, |id| Flood {
                have: id == NodeId(0),
                sent: false,
            });
            let par_out = par.run_parallel(1000, threads);
            assert_eq!(seq_out, par_out);
            assert_eq!(seq.cost(), par.cost());
            for v in g.nodes() {
                assert_eq!(seq.node(v).have, par.node(v).have);
                assert_eq!(seq.node(v).sent, par.node(v).sent);
            }
        }
    }
}
