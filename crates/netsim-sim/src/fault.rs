//! Deterministic fault, loss, and churn injection.
//!
//! A [`FaultPlan`] is a *seeded, fully deterministic* description of the
//! adversary: per-round channel-slot erasures, per-edge point-to-point
//! message drops, and node crash/recover events — the latter either from an
//! explicit schedule or from seeded per-round rates.  All three engines
//! ([`SyncEngine`](crate::SyncEngine), [`ReferenceEngine`](crate::ReferenceEngine),
//! and [`AsyncEngine`](crate::AsyncEngine) under the
//! [`Lockstep`](crate::Lockstep) adapter) consume the same plan and must
//! produce bit-identical executions, which is possible because every fault
//! decision is a pure function of the plan's seed and the decision's
//! coordinates (round, channel, edge, node) — never of engine-internal
//! iteration order (see [`rand::FaultRng`]).
//!
//! # The fault-application-point contract
//!
//! This contract is pinned by the `engine_conformance` fault dimension and
//! the `fault_properties` proptests; engines may not deviate:
//!
//! * **Message drops** apply at the *delivery boundary*, keyed by the
//!   sending round and the directed edge `(from, to)`: a dropped message is
//!   counted as sent ([`CostAccount::p2p_messages`](crate::CostAccount)) and
//!   as dropped ([`CostAccount::dropped_messages`]), but never reaches the
//!   recipient's inbox.  All same-round copies on the same directed edge
//!   share one coin flip.
//! * **Slot erasures** apply at the *resolve boundary*, keyed by the round
//!   and the channel: a slot scheduled for erasure resolves to the
//!   distinguished [`SlotOutcome::Erased`](crate::SlotOutcome) **iff at
//!   least one attached node wrote** — an idle slot stays idle, so
//!   [`CostAccount::erased_slots`] counts actual erasures only.  The
//!   would-be winner's payload is discarded at that boundary, and every
//!   attached node hears the erasure as (non-idle) feedback.
//! * **Crash events** take effect at the *start* of their round, before any
//!   node steps: from that round on the node neither steps nor stages, so
//!   any message or channel write it would have produced is never made,
//!   while messages and writes it issued in earlier rounds are already in
//!   flight and deliver/resolve normally.  Messages *addressed to* a
//!   non-operational node are silently discarded at the delivery boundary
//!   (they are implicit losses of the crash, not counted as
//!   `dropped_messages`).
//! * **Node lifecycle** is `Off → Booting → Operational → Crashed →
//!   Booting → …` ([`NodeLifecycle`]): a recover event moves a crashed (or
//!   off) node to `Booting` and fires
//!   [`Protocol::on_recover`](crate::Protocol::on_recover) at that
//!   transition; the node is promoted to `Operational` — and steps again —
//!   at the start of the *next* round.  Only `Operational` nodes step.
//!   `Off` and `Crashed` nodes are exempt from the quiescence condition
//!   (the run can end while they are down); a `Booting` node that is not
//!   done keeps the engine running until it has stepped.
//! * **Accounting**: [`CostAccount::crashed_rounds`] increases by the
//!   number of non-operational nodes in every executed round, identically
//!   in all engines.
//!
//! Lifecycle transitions are applied once per round, in a deterministic
//! order: boot promotions (ascending node id), then the explicit schedule
//! (in schedule order), then seeded crash draws and seeded recover draws
//! (each in ascending node id).

use crate::channel::ChannelId;
use crate::metrics::CostAccount;
use netsim_graph::NodeId;
use rand::FaultRng;

/// Sub-stream domains of the plan's [`FaultRng`]; fixed so a plan's draws
/// are stable across releases.
const DOMAIN_ERASE: u64 = 1;
const DOMAIN_DROP: u64 = 2;
const DOMAIN_CRASH: u64 = 3;
const DOMAIN_RECOVER: u64 = 4;
const DOMAIN_CORRUPT: u64 = 5;

/// Where a node is in its crash/recover lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeLifecycle {
    /// Never booted; steps nothing, exempt from quiescence.
    Off,
    /// Recovering: [`Protocol::on_recover`](crate::Protocol::on_recover)
    /// has fired, the node steps again from the next round on.
    Booting,
    /// Healthy: steps every round.
    Operational,
    /// Crashed: steps nothing, pending output discarded, inbound messages
    /// lost; exempt from quiescence.
    Crashed,
}

impl NodeLifecycle {
    /// `true` for the one state in which a node executes protocol steps.
    pub fn is_operational(self) -> bool {
        matches!(self, NodeLifecycle::Operational)
    }

    /// `true` for the states exempt from the engines' quiescence condition
    /// (`Off` and `Crashed`: the run may end while such nodes are down).
    pub fn is_exempt(self) -> bool {
        matches!(self, NodeLifecycle::Off | NodeLifecycle::Crashed)
    }
}

/// One explicitly scheduled churn event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Node `node` crashes at the start of round `round`.
    Crash {
        /// First round the node misses.
        round: u64,
        /// The crashing node.
        node: NodeId,
    },
    /// Node `node` begins recovering (`Crashed`/`Off` → `Booting`) at the
    /// start of round `round`; it steps again from round `round + 1`.
    Recover {
        /// The round in which recovery begins.
        round: u64,
        /// The recovering node.
        node: NodeId,
    },
}

impl FaultEvent {
    fn round(&self) -> u64 {
        match *self {
            FaultEvent::Crash { round, .. } | FaultEvent::Recover { round, .. } => round,
        }
    }
}

/// A seeded, fully deterministic fault schedule; see the module docs for
/// the pinned application-point contract.
///
/// Construct with [`FaultPlan::none`] (no faults) or
/// [`FaultPlan::from_rates`], then optionally layer an explicit churn
/// schedule with [`FaultPlan::with_events`] and initially-off nodes with
/// [`FaultPlan::with_initial_off`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    erase_p: f64,
    drop_p: f64,
    crash_p: f64,
    recover_p: f64,
    corrupt_p: f64,
    /// Explicit churn schedule, sorted by round (stable).
    events: Vec<FaultEvent>,
    /// Nodes that start `Off` instead of `Operational`.
    initial_off: Vec<NodeId>,
    /// A link partition: `(first_round, end_round, side)` — every message
    /// crossing the cut between `side` (sorted) and its complement is
    /// dropped in rounds `first_round..end_round`.
    partition: Option<(u64, u64, Vec<NodeId>)>,
}

impl FaultPlan {
    /// The null plan: no erasures, no drops, no churn.  Executions under
    /// this plan are bit-identical to executions with no plan at all
    /// (pinned by the `fault_properties` proptests).
    pub fn none() -> Self {
        FaultPlan::from_rates(0, 0.0, 0.0, 0.0, 0.0)
    }

    /// A rate-based plan: each round, every channel slot is erased with
    /// probability `erase_p`, every same-round `(from, to)` message bundle
    /// is dropped with probability `drop_p`, every operational node crashes
    /// with probability `crash_p`, and every crashed node starts recovering
    /// with probability `recover_p` — all decided by stateless draws from
    /// `seed`, so the plan is reproducible and independent of engine call
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `0.0..=1.0`.
    pub fn from_rates(seed: u64, erase_p: f64, drop_p: f64, crash_p: f64, recover_p: f64) -> Self {
        for (name, p) in [
            ("erase_p", erase_p),
            ("drop_p", drop_p),
            ("crash_p", crash_p),
            ("recover_p", recover_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} outside 0..=1");
        }
        FaultPlan {
            seed,
            erase_p,
            drop_p,
            crash_p,
            recover_p,
            corrupt_p: 0.0,
            events: Vec::new(),
            initial_off: Vec::new(),
            partition: None,
        }
    }

    /// Adds a payload-corruption rate: each round, every channel's busy
    /// lane word is corrupted — a seeded single-bit flip at the resolve
    /// boundary — with probability `corrupt_p` (see
    /// [`FaultPlan::corrupts_lane`]).  Corruption only touches lane words
    /// (`u64` sub-slot payloads); arena-backed message payloads are opaque
    /// to the fault layer and stay intact.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt_p` is outside `0.0..=1.0`.
    pub fn with_corruption(mut self, corrupt_p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&corrupt_p),
            "corrupt_p = {corrupt_p} outside 0..=1"
        );
        self.corrupt_p = corrupt_p;
        self
    }

    /// Adds an explicit churn schedule on top of the seeded rates.  Events
    /// are applied in round order (ties keep the given order), after boot
    /// promotions and before the round's seeded draws.
    pub fn with_events(mut self, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(FaultEvent::round);
        self.events = events;
        self
    }

    /// Marks `nodes` as starting [`NodeLifecycle::Off`]; an `Off` node
    /// boots when a [`FaultEvent::Recover`] names it.
    pub fn with_initial_off(mut self, nodes: Vec<NodeId>) -> Self {
        self.initial_off = nodes;
        self
    }

    /// Adds a **link partition**: in rounds `first_round..end_round`, every
    /// point-to-point message crossing the cut between `side` and its
    /// complement is dropped — *correlated* drops on an edge cut, unlike
    /// the independent per-edge coin flips of `drop_p`.  Drops apply at the
    /// same delivery boundary as rate drops (sent and counted as dropped,
    /// never delivered); channel traffic is unaffected, which is exactly
    /// the adversary the re-sharding veto census exists to catch.  The
    /// window heals at `end_round`: messages sent in round `end_round` or
    /// later cross normally.
    ///
    /// # Panics
    ///
    /// Panics if `first_round >= end_round`.
    pub fn with_partition(
        mut self,
        first_round: u64,
        end_round: u64,
        mut side: Vec<NodeId>,
    ) -> Self {
        assert!(
            first_round < end_round,
            "partition window {first_round}..{end_round} is empty"
        );
        side.sort();
        side.dedup();
        self.partition = Some((first_round, end_round, side));
        self
    }

    /// `true` when the plan can never produce a fault.
    pub fn is_null(&self) -> bool {
        self.erase_p <= 0.0
            && self.drop_p <= 0.0
            && self.crash_p <= 0.0
            && self.recover_p <= 0.0
            && self.corrupt_p <= 0.0
            && self.events.is_empty()
            && self.initial_off.is_empty()
            && self.partition.is_none()
    }

    fn rng(&self) -> FaultRng {
        FaultRng::new(self.seed)
    }

    /// Stateless draw: is channel `chan`'s slot of round `round` scheduled
    /// for erasure?  (The erasure *applies* only if the slot carries at
    /// least one write — see the module docs.)
    pub fn erases_slot(&self, round: u64, chan: ChannelId) -> bool {
        self.erase_p > 0.0
            && self
                .rng()
                .split(DOMAIN_ERASE)
                .chance(round, chan.index() as u64, self.erase_p)
    }

    /// Stateless draw: is channel `chan`'s lane word of round `round`
    /// scheduled for corruption?  Returns the bit index (`0..64`) to flip.
    /// The corruption *applies* only if the lane sub-slot is busy and not
    /// erased — the flip lands on the resolved (OR-merged) word at the
    /// resolve boundary, so every hearer observes the same corrupted word.
    pub fn corrupts_lane(&self, round: u64, chan: ChannelId) -> Option<u32> {
        if self.corrupt_p <= 0.0 {
            return None;
        }
        let rng = self.rng().split(DOMAIN_CORRUPT);
        if !rng.chance(round, chan.index() as u64, self.corrupt_p) {
            return None;
        }
        // A distinct key (high bit set) decorrelates the bit index from the
        // fire decision while staying a pure function of (round, chan).
        Some((rng.draw(round, chan.index() as u64 | (1 << 32)) & 63) as u32)
    }

    /// Stateless draw: are the messages sent in round `round` over the
    /// directed edge `from → to` dropped?  One draw covers every same-round
    /// copy on that edge.  A [`with_partition`](Self::with_partition) cut
    /// drops deterministically (no draw) while its window is open.
    pub fn drops_message(&self, round: u64, from: NodeId, to: NodeId) -> bool {
        if let Some((first, end, side)) = &self.partition {
            if (*first..*end).contains(&round)
                && side.binary_search(&from).is_ok() != side.binary_search(&to).is_ok()
            {
                return true;
            }
        }
        self.drop_p > 0.0
            && self.rng().split(DOMAIN_DROP).chance(
                round,
                ((from.index() as u64) << 32) | to.index() as u64,
                self.drop_p,
            )
    }

    fn rate_crashes(&self, round: u64, node: NodeId) -> bool {
        self.crash_p > 0.0
            && self
                .rng()
                .split(DOMAIN_CRASH)
                .chance(round, node.index() as u64, self.crash_p)
    }

    fn rate_recovers(&self, round: u64, node: NodeId) -> bool {
        self.recover_p > 0.0
            && self
                .rng()
                .split(DOMAIN_RECOVER)
                .chance(round, node.index() as u64, self.recover_p)
    }
}

/// A [`FaultPlan`] instantiated against a concrete node count: tracks the
/// per-node [`NodeLifecycle`] as rounds are applied in order.
///
/// Engines hold one session per run and call
/// [`FaultSession::apply_round`]`(r)` exactly once at the start of round
/// `r`, for `r = 0, 1, 2, …` with no gaps; the `on_transition` callback
/// fires for every lifecycle change (engines use the `Crashed → Booting`
/// edge to invoke [`Protocol::on_recover`](crate::Protocol::on_recover)
/// and to maintain their quiescence counters).
#[derive(Clone, Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    lifecycle: Vec<NodeLifecycle>,
    /// Index of the first unapplied event in `plan.events`.
    next_event: usize,
    /// The next round `apply_round` expects.
    next_round: u64,
    /// Count of nodes not currently `Operational`.
    non_operational: u64,
}

impl FaultSession {
    /// Instantiates `plan` for `n` nodes (all `Operational` except the
    /// plan's initially-off set).
    pub fn new(plan: FaultPlan, n: usize) -> Self {
        let mut lifecycle = vec![NodeLifecycle::Operational; n];
        for &v in &plan.initial_off {
            assert!(v.index() < n, "initially-off node {v:?} out of range");
            lifecycle[v.index()] = NodeLifecycle::Off;
        }
        let non_operational = lifecycle.iter().filter(|l| !l.is_operational()).count() as u64;
        FaultSession {
            plan,
            lifecycle,
            next_event: 0,
            next_round: 0,
            non_operational,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current lifecycle state of node `v`.
    pub fn lifecycle(&self, v: NodeId) -> NodeLifecycle {
        self.lifecycle[v.index()]
    }

    /// All per-node lifecycle states, indexed by node id.
    pub fn lifecycles(&self) -> &[NodeLifecycle] {
        &self.lifecycle
    }

    /// `true` iff node `v` currently steps.
    pub fn is_operational(&self, v: NodeId) -> bool {
        self.lifecycle[v.index()].is_operational()
    }

    /// Number of nodes not currently `Operational` — the per-round
    /// increment of [`CostAccount::crashed_rounds`](crate::CostAccount).
    pub fn non_operational_count(&self) -> u64 {
        self.non_operational
    }

    /// Delegates to [`FaultPlan::drops_message`].
    pub fn drops_message(&self, round: u64, from: NodeId, to: NodeId) -> bool {
        self.plan.drops_message(round, from, to)
    }

    /// Delegates to [`FaultPlan::erases_slot`].
    pub fn erases_slot(&self, round: u64, chan: ChannelId) -> bool {
        self.plan.erases_slot(round, chan)
    }

    /// Delegates to [`FaultPlan::corrupts_lane`].
    pub fn corrupts_lane(&self, round: u64, chan: ChannelId) -> Option<u32> {
        self.plan.corrupts_lane(round, chan)
    }

    fn transition<F: FnMut(NodeId, NodeLifecycle, NodeLifecycle)>(
        &mut self,
        v: NodeId,
        to: NodeLifecycle,
        on_transition: &mut F,
    ) {
        let from = self.lifecycle[v.index()];
        if from == to {
            return;
        }
        self.non_operational = self.non_operational + u64::from(!to.is_operational())
            - u64::from(!from.is_operational());
        self.lifecycle[v.index()] = to;
        on_transition(v, from, to);
    }

    /// Applies round `round`'s lifecycle transitions: boot promotions,
    /// then the explicit schedule, then seeded crash and recover draws.
    /// Must be called with consecutive rounds starting at 0.
    ///
    /// # Panics
    ///
    /// Panics when rounds are applied out of order or twice.
    pub fn apply_round<F: FnMut(NodeId, NodeLifecycle, NodeLifecycle)>(
        &mut self,
        round: u64,
        mut on_transition: F,
    ) {
        assert_eq!(
            round, self.next_round,
            "fault rounds must be applied consecutively"
        );
        self.next_round += 1;

        // 1. Nodes that began recovering last round step from this round on.
        for i in 0..self.lifecycle.len() {
            if self.lifecycle[i] == NodeLifecycle::Booting {
                self.transition(NodeId(i), NodeLifecycle::Operational, &mut on_transition);
            }
        }

        // 2. Explicit schedule.
        while self.next_event < self.plan.events.len()
            && self.plan.events[self.next_event].round() == round
        {
            let ev = self.plan.events[self.next_event];
            self.next_event += 1;
            match ev {
                FaultEvent::Crash { node, .. } => {
                    if matches!(
                        self.lifecycle[node.index()],
                        NodeLifecycle::Operational | NodeLifecycle::Booting
                    ) {
                        self.transition(node, NodeLifecycle::Crashed, &mut on_transition);
                    }
                }
                FaultEvent::Recover { node, .. } => {
                    if self.lifecycle[node.index()].is_exempt() {
                        self.transition(node, NodeLifecycle::Booting, &mut on_transition);
                    }
                }
            }
        }

        // 3. Seeded churn rates (skipped entirely at zero rates).
        if self.plan.crash_p > 0.0 {
            for i in 0..self.lifecycle.len() {
                if self.lifecycle[i].is_operational() && self.plan.rate_crashes(round, NodeId(i)) {
                    self.transition(NodeId(i), NodeLifecycle::Crashed, &mut on_transition);
                }
            }
        }
        if self.plan.recover_p > 0.0 {
            for i in 0..self.lifecycle.len() {
                if self.lifecycle[i] == NodeLifecycle::Crashed
                    && self.plan.rate_recovers(round, NodeId(i))
                {
                    self.transition(NodeId(i), NodeLifecycle::Booting, &mut on_transition);
                }
            }
        }
    }

    /// Charges this round's churn to `cost`
    /// ([`CostAccount::crashed_rounds`]); engines call it once per executed
    /// round, right after [`FaultSession::apply_round`].
    pub fn charge_round(&self, cost: &mut CostAccount) {
        cost.add_crashed_rounds(self.non_operational);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_order_independent_and_seeded() {
        let a = FaultPlan::from_rates(11, 0.3, 0.3, 0.1, 0.1);
        let b = FaultPlan::from_rates(11, 0.3, 0.3, 0.1, 0.1);
        // Interrogate the plans in different orders: same answers.
        let fwd: Vec<bool> = (0..40)
            .flat_map(|r| (0..4).map(move |c| (r, c)))
            .map(|(r, c)| a.erases_slot(r, ChannelId(c)))
            .collect();
        let bwd: Vec<bool> = {
            let mut v: Vec<(u64, u16)> =
                (0..40).flat_map(|r| (0..4).map(move |c| (r, c))).collect();
            v.reverse();
            let mut out: Vec<bool> = v
                .into_iter()
                .map(|(r, c)| b.erases_slot(r, ChannelId(c)))
                .collect();
            out.reverse();
            out
        };
        assert_eq!(fwd, bwd);
        assert!(
            fwd.iter().any(|&e| e),
            "0.3 erasure rate must fire in 160 slots"
        );
        // Edge drops are directed and keyed by the full (round, from, to).
        let drops: Vec<bool> = (0..200)
            .map(|r| a.drops_message(r, NodeId(1), NodeId(2)))
            .collect();
        assert_eq!(
            drops,
            (0..200)
                .map(|r| b.drops_message(r, NodeId(1), NodeId(2)))
                .collect::<Vec<_>>()
        );
        assert!(drops.iter().any(|&d| d));
        assert!(drops.iter().any(|&d| !d));
        // A different seed disagrees somewhere.
        let c = FaultPlan::from_rates(12, 0.3, 0.3, 0.1, 0.1);
        assert!((0..200).any(|r| {
            a.drops_message(r, NodeId(1), NodeId(2)) != c.drops_message(r, NodeId(1), NodeId(2))
        }));
    }

    #[test]
    fn corruption_draws_are_seeded_and_bounded() {
        let a = FaultPlan::none().with_corruption(0.4);
        let b = FaultPlan::none().with_corruption(0.4);
        assert!(!a.is_null());
        let fwd: Vec<Option<u32>> = (0..200).map(|r| a.corrupts_lane(r, ChannelId(1))).collect();
        let bwd: Vec<Option<u32>> = (0..200)
            .rev()
            .map(|r| b.corrupts_lane(r, ChannelId(1)))
            .rev()
            .collect();
        assert_eq!(fwd, bwd);
        assert!(fwd.iter().any(|c| c.is_some()), "0.4 rate must fire");
        assert!(fwd.iter().any(|c| c.is_none()), "0.4 rate must also miss");
        for bit in fwd.iter().flatten() {
            assert!(*bit < 64, "flip index {bit} out of word range");
        }
        // Bit indices are decorrelated from the fire decision: over 200
        // rounds the fired flips must not all land on the same bit.
        let bits: Vec<u32> = fwd.iter().flatten().copied().collect();
        assert!(bits.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn partition_drops_exactly_the_cut_in_its_window() {
        let plan = FaultPlan::none().with_partition(3, 6, vec![NodeId(0), NodeId(2)]);
        assert!(!plan.is_null());
        for r in 0..10 {
            let open = (3..6).contains(&r);
            // Cross-cut pairs drop iff the window is open, both directions.
            assert_eq!(plan.drops_message(r, NodeId(0), NodeId(1)), open);
            assert_eq!(plan.drops_message(r, NodeId(1), NodeId(2)), open);
            // Same-side pairs never drop.
            assert!(!plan.drops_message(r, NodeId(0), NodeId(2)));
            assert!(!plan.drops_message(r, NodeId(1), NodeId(3)));
        }
        // Rate drops still layer on top of the cut.
        let layered =
            FaultPlan::from_rates(9, 0.0, 0.5, 0.0, 0.0).with_partition(0, 1, vec![NodeId(0)]);
        assert!(layered.drops_message(0, NodeId(0), NodeId(1)));
        assert!((0..200).any(|r| layered.drops_message(r, NodeId(1), NodeId(3))));
    }

    #[test]
    fn null_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_null());
        for r in 0..100 {
            assert!(!p.erases_slot(r, ChannelId(0)));
            assert!(!p.drops_message(r, NodeId(0), NodeId(1)));
            assert!(p.corrupts_lane(r, ChannelId(0)).is_none());
        }
        let mut s = FaultSession::new(p, 8);
        for r in 0..100 {
            s.apply_round(r, |_, _, _| panic!("null plan must not transition"));
        }
        assert_eq!(s.non_operational_count(), 0);
    }

    #[test]
    fn scheduled_crash_and_recover_lifecycle() {
        let plan = FaultPlan::none().with_events(vec![
            FaultEvent::Crash {
                round: 2,
                node: NodeId(1),
            },
            FaultEvent::Recover {
                round: 5,
                node: NodeId(1),
            },
            FaultEvent::Recover {
                round: 3,
                node: NodeId(0),
            },
        ]);
        let plan = plan.with_initial_off(vec![NodeId(0)]);
        let mut s = FaultSession::new(plan, 3);
        assert_eq!(s.lifecycle(NodeId(0)), NodeLifecycle::Off);
        assert_eq!(s.non_operational_count(), 1);

        let mut log: Vec<(u64, usize, NodeLifecycle, NodeLifecycle)> = Vec::new();
        for r in 0..8 {
            s.apply_round(r, |v, from, to| log.push((r, v.index(), from, to)));
        }
        assert_eq!(
            log,
            vec![
                (2, 1, NodeLifecycle::Operational, NodeLifecycle::Crashed),
                (3, 0, NodeLifecycle::Off, NodeLifecycle::Booting),
                (4, 0, NodeLifecycle::Booting, NodeLifecycle::Operational),
                (5, 1, NodeLifecycle::Crashed, NodeLifecycle::Booting),
                (6, 1, NodeLifecycle::Booting, NodeLifecycle::Operational),
            ]
        );
        assert_eq!(s.non_operational_count(), 0);
        let mut cost = CostAccount::new();
        s.charge_round(&mut cost);
        assert_eq!(cost.crashed_rounds, 0);
    }

    #[test]
    #[should_panic(expected = "consecutively")]
    fn out_of_order_rounds_rejected() {
        let mut s = FaultSession::new(FaultPlan::none(), 2);
        s.apply_round(1, |_, _, _| {});
    }

    #[test]
    fn rate_churn_respects_state_machine() {
        let plan = FaultPlan::from_rates(77, 0.0, 0.0, 0.2, 0.5);
        let mut s = FaultSession::new(plan, 16);
        let mut crashes = 0u32;
        let mut recovers = 0u32;
        for r in 0..64 {
            s.apply_round(r, |_, from, to| match (from, to) {
                (NodeLifecycle::Operational, NodeLifecycle::Crashed) => crashes += 1,
                (NodeLifecycle::Crashed, NodeLifecycle::Booting) => recovers += 1,
                (NodeLifecycle::Booting, NodeLifecycle::Operational) => {}
                other => panic!("illegal transition {other:?}"),
            });
        }
        assert!(
            crashes > 0,
            "20% crash rate must fire over 64 rounds x 16 nodes"
        );
        assert!(recovers > 0, "50% recovery rate must fire");
    }
}
