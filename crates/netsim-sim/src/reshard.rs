//! Adaptive channel re-sharding: contention monitoring and the
//! distributed, engine-executed recombination protocol.
//!
//! A sharded workload attaches each node to exactly one of `K` collision
//! channels ([`ChannelSet::sharded`](crate::ChannelSet::sharded)).  When the
//! attachment is skewed — one channel carries far more writers than another —
//! the hot channel serialises its shard while the cold one idles.  This
//! module provides the two halves of the adaptive fix:
//!
//! 1. [`ContentionMonitor`] watches per-channel
//!    [`CostAccount`] deltas
//!    ([`SyncEngine::channel_costs`](crate::SyncEngine::channel_costs) and
//!    friends) between observation points and, when the hottest channel's
//!    load exceeds a configured skew bound over the coldest's, emits a
//!    [`ReshardDecision`] pairing them.
//!
//! 2. [`ReshardNode`] is a [`Protocol`] executed *by the engine* (not the
//!    driver) over the merged member set of the paired channels: the leader
//!    grows a loop-erased-random-walk spanning tree (Wilson's algorithm,
//!    [`wilson_parents`]) over the merged roster, streams it to every member
//!    as sequenced lane words on the hot channel with erasure-driven
//!    retransmission, broadcasts the balance-optimal cut edge
//!    ([`balance_cut`]) with a checksum, and the members then run a
//!    one-round multiaccess veto: migrators notify their roster
//!    neighbours point-to-point, every member compares the notify count it
//!    heard against the count the shared tree predicts, and any mismatch —
//!    dropped notifies across a partition, a corrupted stream word, a
//!    checksum failure — is a single slot write whose non-idle outcome
//!    aborts the migration for everyone.  An idle veto slot commits it.
//!
//! The driver side (pairing the decision with a workload, re-attaching the
//! cut subtree to the cold channel between rounds, reseeding shard ranks)
//! lives in `multimedia::rebalance`, written once against
//! [`EngineControl`](crate::EngineControl) and therefore identical across
//! all four substrates.
//!
//! # Determinism
//!
//! Everything here is a pure function of `(roster, hot, cold, seed)` and the
//! engine's pinned delivery semantics: the walk uses stateless keyed draws
//! ([`rand::FaultRng`]), the stream is a deterministic replay with
//! deterministic erasure retries, and the commit/abort verdict is a shared
//! slot outcome.  The conformance suite pins the full decision trace
//! bit-identically across the flat, reference, lockstep-async and wire
//! substrates.
//!
//! # Fault semantics
//!
//! The protocol is *conservative*: it either commits on every operational
//! member or aborts on every operational member.
//!
//! * **Erasures** on the stream lane stall the sequence number, so the
//!   leader (whose own mirror stalls identically) retransmits; the stream
//!   makes progress at one word per non-erased round.
//! * **Corruption** of a stream word either misses the expected sequence
//!   number (ignored, retransmitted) or poisons every mirror identically,
//!   in which case the leader's checksum fails on all members at once and
//!   the veto aborts the attempt.
//! * **Drops** of notify messages (e.g. a
//!   [`FaultPlan::with_partition`](crate::FaultPlan) edge cut) leave some
//!   member short of its predicted count; it vetoes, and the shared slot
//!   outcome aborts everyone.
//! * **Crashes** mid-protocol make the recovering node abstain
//!   (`committed == Some(false)`, no migration); a crashed leader stalls
//!   the stream and the driver's round budget aborts the attempt.

use std::sync::Arc;

use crate::channel::{ChannelId, LaneOutcome};
use crate::metrics::CostAccount;
use crate::node::{Protocol, RoundIo};
use netsim_graph::NodeId;
use rand::FaultRng;

/// Upper bound on the merged roster size: parent entries travel as 14-bit
/// indices, three to a lane word.
pub const MAX_ROSTER: usize = 1 << 14;

/// Opcode of a lane word carrying up to three parent entries.
const OP_PARENTS: u64 = 0b01 << 62;
/// Opcode of the lane word broadcasting the cut edge and tree checksum.
const OP_CUT: u64 = 0b10 << 62;
/// Opcode mask (top two bits of the word).
const OP_MASK: u64 = 0b11 << 62;

/// Point-to-point sentinel a migrating member sends its roster neighbours
/// in the notify round.
pub const NOTIFY: u64 = 0x5245_5348_4e46_5931;
/// Slot message written by any member whose notify census or checksum
/// disagrees with the shared tree; a non-idle veto slot aborts the attempt.
pub const VETO: u64 = 0x5245_5348_5654_4f31;

// ---------------------------------------------------------------------------
// Contention monitoring
// ---------------------------------------------------------------------------

/// A re-sharding trigger: the hottest and coldest channel of an observation
/// window, with their window loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReshardDecision {
    /// The most contended channel (ties broken towards the lowest index).
    pub hot: ChannelId,
    /// The least contended channel (ties broken towards the lowest index).
    pub cold: ChannelId,
    /// The hot channel's load over the window.
    pub hot_load: u64,
    /// The cold channel's load over the window.
    pub cold_load: u64,
}

/// One observation window's result: the per-channel loads and, when the
/// skew bound was exceeded, the [`ReshardDecision`] pairing the extremes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentionReport {
    /// Per-channel load over the window (see [`ContentionMonitor`]).
    pub loads: Vec<u64>,
    /// `Some` when `max_load > skew * max(min_load, 1)`.
    pub decision: Option<ReshardDecision>,
}

/// Watches per-channel [`CostAccount`] deltas between observation points.
///
/// A channel's **load** over a window is the delta of
/// `slots_busy() + lanes_busy + lanes_erased`: the number of slot and lane
/// sub-slots that carried (or lost) traffic.  Idle capacity is free, so a
/// perfectly balanced attachment reports near-equal loads and never fires.
/// The monitor fires when `max_load > skew * max(min_load, 1)` — the
/// `max(·, 1)` floor makes an entirely idle channel count as load 1, so the
/// bound stays a finite multiplier.
///
/// The monitor is driver state (it never enters the engine); feeding it the
/// reconciled [`channel_costs`](crate::EngineControl::channel_costs) of any
/// substrate yields the same decisions, which the conformance suite pins.
#[derive(Clone, Debug)]
pub struct ContentionMonitor {
    skew: u64,
    last: Vec<CostAccount>,
}

impl ContentionMonitor {
    /// A monitor over `k` channels firing at the given skew multiplier
    /// (`skew >= 1`).
    pub fn new(k: u16, skew: u64) -> Self {
        assert!(skew >= 1, "skew bound must be at least 1");
        ContentionMonitor {
            skew,
            last: vec![CostAccount::new(); usize::from(k)],
        }
    }

    /// Ingests the current cumulative per-channel accounts, returning the
    /// window's loads (delta since the previous call) and the re-sharding
    /// decision, if the skew bound was exceeded.  Needs at least two
    /// channels to ever fire.
    pub fn observe(&mut self, costs: &[CostAccount]) -> ContentionReport {
        assert_eq!(costs.len(), self.last.len(), "channel count changed");
        let loads: Vec<u64> = costs
            .iter()
            .zip(self.last.iter())
            .map(|(cur, old)| {
                (cur.slots_busy() - old.slots_busy())
                    + (cur.lanes_busy - old.lanes_busy)
                    + (cur.lanes_erased - old.lanes_erased)
            })
            .collect();
        self.last.copy_from_slice(costs);
        let decision = self.decide(&loads);
        ContentionReport { loads, decision }
    }

    fn decide(&self, loads: &[u64]) -> Option<ReshardDecision> {
        if loads.len() < 2 {
            return None;
        }
        let mut hot = 0usize;
        let mut cold = 0usize;
        for (c, &load) in loads.iter().enumerate() {
            if load > loads[hot] {
                hot = c;
            }
            if load < loads[cold] {
                cold = c;
            }
        }
        if hot == cold || loads[hot] <= self.skew * loads[cold].max(1) {
            return None;
        }
        Some(ReshardDecision {
            hot: ChannelId(hot as u16),
            cold: ChannelId(cold as u16),
            hot_load: loads[hot],
            cold_load: loads[cold],
        })
    }
}

// ---------------------------------------------------------------------------
// Tree construction and cutting (leader-local, checksummed on the wire)
// ---------------------------------------------------------------------------

/// Grows a uniform spanning tree of the **complete graph** on `m` vertices
/// by Wilson's loop-erased-random-walk algorithm, rooted at vertex 0.
///
/// Returns the parent array: `parents[0] == 0` (the root), and for
/// `i >= 1`, `parents[i]` is `i`'s tree parent.  Every random step is a
/// stateless keyed draw of [`FaultRng`] on `(step_counter, vertex)`, so the
/// tree is a pure function of `(m, seed)` — the leader grows it locally and
/// the checksum in the cut broadcast lets every mirror audit the streamed
/// copy against it.
pub fn wilson_parents(m: usize, seed: u64) -> Vec<u32> {
    assert!(m >= 1, "empty roster");
    assert!(m <= MAX_ROSTER, "roster exceeds 14-bit index space");
    let rng = FaultRng::new(seed);
    let mut parents = vec![0u32; m];
    let mut in_tree = vec![false; m];
    in_tree[0] = true;
    let mut successor = vec![0u32; m];
    let mut ctr = 0u64;
    for start in 1..m {
        if in_tree[start] {
            continue;
        }
        // Random walk from `start` until it hits the tree, remembering only
        // the latest successor of each vertex (the loop erasure).
        let mut v = start;
        while !in_tree[v] {
            let r = rng.draw(ctr, v as u64) as usize % (m - 1);
            ctr += 1;
            let u = if r >= v { r + 1 } else { r };
            successor[v] = u as u32;
            v = u;
        }
        // Commit the loop-erased path.
        let mut v = start;
        while !in_tree[v] {
            in_tree[v] = true;
            parents[v] = successor[v];
            v = successor[v] as usize;
        }
    }
    parents
}

/// Subtree sizes of a parent array (root 0), computed by one BFS order and
/// one reverse accumulation pass.
fn subtree_sizes(parents: &[u32]) -> Vec<usize> {
    let m = parents.len();
    let (head, next) = child_lists(parents);
    let mut order = Vec::with_capacity(m);
    order.push(0usize);
    let mut qi = 0;
    while qi < order.len() {
        let mut c = head[order[qi]];
        qi += 1;
        while c != usize::MAX {
            order.push(c);
            c = next[c];
        }
    }
    let mut size = vec![1usize; m];
    for &v in order.iter().rev() {
        if v != 0 {
            size[parents[v] as usize] += size[v];
        }
    }
    size
}

/// Intrusive child lists of a parent array: `head[p]` is `p`'s first child,
/// `next[c]` its next sibling (`usize::MAX` terminated).  Children appear in
/// ascending index order.
fn child_lists(parents: &[u32]) -> (Vec<usize>, Vec<usize>) {
    let m = parents.len();
    let mut head = vec![usize::MAX; m];
    let mut next = vec![usize::MAX; m];
    for i in (1..m).rev() {
        let p = (parents[i] as usize).min(m - 1);
        next[i] = head[p];
        head[p] = i;
    }
    (head, next)
}

/// The balance-optimal cut edge of a spanning tree: the non-root vertex
/// `c` minimising `|2 * subtree_size(c) - m|` (ties broken towards the
/// smallest index).  Cutting the edge `(c, parent(c))` splits the tree into
/// the most even two-coloring any single tree edge allows.  Returns
/// `(cut_child, subtree_size)`.
pub fn balance_cut(parents: &[u32]) -> (usize, usize) {
    let m = parents.len();
    assert!(m >= 2, "a single-vertex tree has no edge to cut");
    let size = subtree_sizes(parents);
    let mut best = 1usize;
    let mut best_score = (2 * size[1]).abs_diff(m);
    for (i, &sz) in size.iter().enumerate().skip(2) {
        let score = (2 * sz).abs_diff(m);
        if score < best_score {
            best = i;
            best_score = score;
        }
    }
    (best, size[best])
}

/// Membership of the subtree rooted at `cut`: `members[i]` is `true` iff
/// `i` lies in `cut`'s subtree (the side that migrates to the cold
/// channel).  Out-of-range or root cuts yield an empty membership.
pub fn subtree_members(parents: &[u32], cut: usize) -> Vec<bool> {
    let m = parents.len();
    let mut members = vec![false; m];
    if cut == 0 || cut >= m {
        return members;
    }
    let (head, next) = child_lists(parents);
    let mut queue = vec![cut];
    members[cut] = true;
    while let Some(v) = queue.pop() {
        let mut c = head[v];
        while c != usize::MAX {
            if !members[c] {
                members[c] = true;
                queue.push(c);
            }
            c = next[c];
        }
    }
    members
}

/// FNV-1a digest of a parent array and cut choice, folded to 32 bits: the
/// audit value the cut broadcast carries so every mirror can verify its
/// streamed tree against the leader's private one.
pub fn tree_checksum(parents: &[u32], cut: usize) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parents {
        h = (h ^ u64::from(p)).wrapping_mul(0x100_0000_01b3);
    }
    h = (h ^ cut as u64).wrapping_mul(0x100_0000_01b3);
    (h ^ (h >> 32)) as u32
}

// ---------------------------------------------------------------------------
// The engine-executed protocol
// ---------------------------------------------------------------------------

/// Immutable parameters of one re-sharding attempt, shared by every
/// participating [`ReshardNode`].
#[derive(Clone, Debug)]
pub struct ReshardSpec {
    /// The merged member set of the paired channels, sorted ascending.
    /// `roster[0]` is the leader.  Every roster node must be attached to
    /// [`hot`](Self::hot) for the duration of the attempt (the driver
    /// re-attaches before running it).
    pub roster: Arc<Vec<NodeId>>,
    /// The contended channel: carries the stream lane and the veto slot.
    pub hot: ChannelId,
    /// The destination channel for the cut subtree.
    pub cold: ChannelId,
    /// Seed of the leader's loop-erased random walk.
    pub seed: u64,
}

impl ReshardSpec {
    /// A spec over a sorted roster.  Panics when the roster is unsorted,
    /// smaller than two members, larger than [`MAX_ROSTER`], or the
    /// channels coincide.
    pub fn new(roster: Vec<NodeId>, hot: ChannelId, cold: ChannelId, seed: u64) -> Self {
        assert!(roster.len() >= 2, "re-sharding needs at least two members");
        assert!(
            roster.len() <= MAX_ROSTER,
            "roster exceeds 14-bit index space"
        );
        assert!(
            roster.windows(2).all(|w| w[0] < w[1]),
            "roster must be sorted"
        );
        assert_ne!(hot, cold, "hot and cold channel must differ");
        ReshardSpec {
            roster: Arc::new(roster),
            hot,
            cold,
            seed,
        }
    }

    fn len(&self) -> usize {
        self.roster.len()
    }
}

/// Phase of a roster member's state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Receiving (leader: also transmitting) the parent stream and cut
    /// broadcast on the hot channel's lanes.
    Stream,
    /// The cut is applied; notifies were sent last round, and this step
    /// counts them and writes the veto slot on mismatch.
    Veto,
    /// The veto slot was resolved last round; this step reads the verdict.
    Observe,
    /// Verdict reached (or bystander / crashed-out).
    Done,
}

/// One node's state in the engine-executed re-sharding protocol (see the
/// [module docs](self) for the wire protocol and fault semantics).
///
/// Nodes outside the merged roster participate as [`bystander`]s: they are
/// done from round 0 and ignore all traffic.  Roster members run the
/// stream / notify / veto / observe state machine and finish with
/// [`committed`](Self::committed) set on every operational member — `true`
/// meaning the subtree reported by [`migrating`](Self::migrating) moves to
/// the cold channel, `false` meaning the attempt aborted and nothing moves.
///
/// [`bystander`]: Self::bystander
#[derive(Clone, Debug)]
pub struct ReshardNode {
    spec: Option<ReshardSpec>,
    my_idx: u32,
    /// Leader only: the private walk (streamed, never shared directly).
    walk: Option<Vec<u32>>,
    /// Parent entries as heard on the stream; `mirror[0] == 0`.
    mirror: Vec<u32>,
    /// Count of parent entries applied (entries cover indices
    /// `1..=received`).
    received: usize,
    phase: Phase,
    /// Local evidence of a malformed or corrupted stream; forces a veto.
    invalid: bool,
    cut: u32,
    checksum: u32,
    /// Migrating-side membership by roster index (from the mirror tree).
    members: Vec<bool>,
    /// Notifies this node expects in the veto round, from the shared tree.
    expected: u64,
    committed: Option<bool>,
}

impl ReshardNode {
    /// A roster member's initial state.  Panics when `me` is not on the
    /// roster.  `roster[0]` becomes the leader and grows the walk locally.
    pub fn new(spec: ReshardSpec, me: NodeId) -> Self {
        let my_idx = spec
            .roster
            .binary_search(&me)
            .expect("node is not on the re-sharding roster") as u32;
        let m = spec.len();
        let walk = (my_idx == 0).then(|| wilson_parents(m, spec.seed));
        ReshardNode {
            spec: Some(spec),
            my_idx,
            walk,
            mirror: vec![0u32; m],
            received: 0,
            phase: Phase::Stream,
            invalid: false,
            cut: 0,
            checksum: 0,
            members: Vec::new(),
            expected: 0,
            committed: None,
        }
    }

    /// A non-roster node: done from round 0, deaf to all traffic.
    pub fn bystander() -> Self {
        ReshardNode {
            spec: None,
            my_idx: 0,
            walk: None,
            mirror: Vec::new(),
            received: 0,
            phase: Phase::Done,
            invalid: false,
            cut: 0,
            checksum: 0,
            members: Vec::new(),
            expected: 0,
            committed: None,
        }
    }

    /// The verdict: `Some(true)` committed, `Some(false)` aborted (or
    /// crashed out), `None` still running or bystander.
    pub fn committed(&self) -> Option<bool> {
        self.committed
    }

    /// Whether this node is on the migrating (cut-subtree) side.  Only
    /// meaningful once [`committed`](Self::committed) is `Some(true)`.
    pub fn migrating(&self) -> bool {
        self.members
            .get(self.my_idx as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The cut child index broadcast by the leader, once heard.
    pub fn cut_child(&self) -> Option<u32> {
        (self.phase == Phase::Done && self.spec.is_some() && !self.members.is_empty())
            .then_some(self.cut)
    }

    /// The tree checksum broadcast by the leader, once heard.
    pub fn checksum(&self) -> Option<u32> {
        self.cut_child().map(|_| self.checksum)
    }

    /// The migrating node set, from this node's mirror of the shared tree
    /// (identical on every member that reached a verdict).  Empty unless
    /// the attempt committed.
    pub fn migrating_nodes(&self) -> Vec<NodeId> {
        if self.committed != Some(true) {
            return Vec::new();
        }
        let spec = self.spec.as_ref().expect("verdict implies roster member");
        spec.roster
            .iter()
            .zip(self.members.iter())
            .filter_map(|(&v, &m)| m.then_some(v))
            .collect()
    }

    /// Applies one heard lane word to the mirror / state machine.
    fn apply_stream_word(&mut self, w: u64, io: &RoundIo<'_, u64>) {
        let spec = self.spec.as_ref().expect("stream phase implies roster");
        let m = spec.len();
        match w & OP_MASK {
            OP_PARENTS => {
                let count = ((w >> 60) & 0b11) as usize;
                let seq = ((w >> 44) & 0xFFFF) as usize;
                if seq != self.received {
                    return; // stale retransmission (or corrupted seq: retried)
                }
                if count == 0 || self.received + count > m - 1 {
                    self.invalid = true;
                    return;
                }
                for i in 0..count {
                    let p = ((w >> (30 - 14 * i)) & 0x3FFF) as u32;
                    let idx = 1 + self.received;
                    if p as usize >= m || p as usize == idx {
                        self.invalid = true;
                    }
                    // Clamp so downstream traversals stay in bounds; the
                    // checksum audit catches the divergence regardless.
                    self.mirror[idx] = p.min((m - 1) as u32);
                    self.received += 1;
                }
            }
            OP_CUT => {
                if self.received != m - 1 {
                    return; // premature (corrupted opcode): retried
                }
                let cut = ((w >> 48) & 0x3FFF) as u32;
                let ck = ((w >> 16) & 0xFFFF_FFFF) as u32;
                if cut == 0 || cut as usize >= m || ck != tree_checksum(&self.mirror, cut as usize)
                {
                    self.invalid = true;
                }
                self.cut = cut;
                self.checksum = ck;
                self.members = if self.invalid {
                    vec![false; m]
                } else {
                    subtree_members(&self.mirror, cut as usize)
                };
                // Predict the veto-round notify census from the shared
                // tree: one notify per migrating roster graph-neighbour.
                let spec = self.spec.as_ref().expect("stream phase implies roster");
                let mut expected = 0u64;
                for (u, _) in io.neighbors() {
                    if let Ok(i) = spec.roster.binary_search(&u) {
                        if self.members[i] {
                            expected += 1;
                        }
                    }
                }
                self.expected = expected;
                self.phase = Phase::Veto;
            }
            _ => {} // unrecognised opcode (corruption): ignored, retried
        }
    }

    /// Leader transmit: the next stream word everyone (including the
    /// leader's own mirror) still needs.
    fn leader_word(&self) -> Option<u64> {
        let walk = self.walk.as_ref()?;
        let m = walk.len();
        if self.received < m - 1 {
            let first = 1 + self.received;
            let count = (m - 1 - self.received).min(3);
            let mut w = OP_PARENTS | ((count as u64) << 60) | ((self.received as u64) << 44);
            for (i, &p) in walk[first..first + count].iter().enumerate() {
                w |= u64::from(p) << (30 - 14 * i);
            }
            Some(w)
        } else {
            let (cut, _) = balance_cut(walk);
            let ck = tree_checksum(walk, cut);
            Some(OP_CUT | ((cut as u64) << 48) | (u64::from(ck) << 16))
        }
    }
}

impl Protocol for ReshardNode {
    type Msg = u64;

    fn step(&mut self, io: &mut RoundIo<'_, u64>) {
        let Some(spec) = self.spec.clone() else {
            return; // bystander
        };
        match self.phase {
            Phase::Stream => {
                if let LaneOutcome::Word(w) = io.prev_lanes_on(spec.hot) {
                    self.apply_stream_word(w, io);
                }
                if self.phase == Phase::Veto {
                    // The cut landed this very step: send the notifies now
                    // so next round's census counts them.
                    if self.members.get(self.my_idx as usize) == Some(&true) {
                        let to_notify: Vec<NodeId> = io
                            .neighbors()
                            .into_iter()
                            .map(|(u, _)| u)
                            .filter(|u| spec.roster.binary_search(u).is_ok())
                            .collect();
                        for u in to_notify {
                            io.send(u, NOTIFY);
                        }
                    }
                } else if self.my_idx == 0 {
                    if let Some(w) = self.leader_word() {
                        io.write_lanes_on(spec.hot, w);
                    }
                }
                io.wake_me();
            }
            Phase::Veto => {
                let heard = io.inbox().iter().filter(|&(_, &m)| m == NOTIFY).count() as u64;
                if heard != self.expected || self.invalid {
                    io.write_channel_on(spec.hot, VETO);
                }
                self.phase = Phase::Observe;
                io.wake_me();
            }
            Phase::Observe => {
                self.committed = Some(io.prev_slot_on(spec.hot).is_idle());
                self.phase = Phase::Done;
            }
            Phase::Done => {}
        }
    }

    fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn on_recover(&mut self) {
        // A crash loses stream words irrecoverably (the sequence moved on),
        // so the recovering node abstains: no migration, no further writes.
        if self.spec.is_some() && self.phase != Phase::Done {
            self.phase = Phase::Done;
            self.committed = Some(false);
            self.members.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelSet;
    use crate::engine::SyncEngine;
    use netsim_graph::generators;

    #[test]
    fn wilson_is_a_deterministic_spanning_tree() {
        for &m in &[2usize, 3, 17, 200] {
            let a = wilson_parents(m, 42);
            let b = wilson_parents(m, 42);
            assert_eq!(a, b, "same seed, same tree");
            assert_eq!(a[0], 0);
            // Every vertex reaches the root: the parent pointers are acyclic.
            for start in 1..m {
                let mut v = start;
                let mut hops = 0;
                while v != 0 {
                    v = a[v] as usize;
                    hops += 1;
                    assert!(hops <= m, "cycle in parent array");
                }
            }
            let c = wilson_parents(m, 43);
            if m > 3 {
                assert_ne!(a, c, "different seed, different tree (w.h.p.)");
            }
        }
    }

    #[test]
    fn balance_cut_minimises_imbalance() {
        // A path 0 <- 1 <- 2 <- 3 <- 4 <- 5: the best cut is at index 3
        // (subtree {3,4,5}, |2*3-6| = 0).
        let parents = vec![0, 0, 1, 2, 3, 4];
        let (cut, size) = balance_cut(&parents);
        assert_eq!((cut, size), (3, 3));
        let members = subtree_members(&parents, cut);
        assert_eq!(members, vec![false, false, false, true, true, true]);
        // A star rooted at 0: every leaf subtree has size 1; ties break to
        // the smallest index.
        let star = vec![0, 0, 0, 0];
        assert_eq!(balance_cut(&star), (1, 1));
    }

    #[test]
    fn monitor_fires_on_skew_and_pairs_extremes() {
        let mut mon = ContentionMonitor::new(3, 2);
        let mut costs = vec![CostAccount::new(); 3];
        // Window 1: balanced-ish — no decision.
        for c in &mut costs {
            c.add_channel_slot(1);
            c.add_channel_slot(1);
        }
        let r = mon.observe(&costs);
        assert_eq!(r.loads, vec![2, 2, 2]);
        assert!(r.decision.is_none());
        // Window 2: channel 1 runs hot, channel 2 stays idle.
        for _ in 0..10 {
            costs[1].add_channel_slot(2);
        }
        costs[0].add_channel_slot(1);
        let r = mon.observe(&costs);
        assert_eq!(r.loads, vec![1, 10, 0]);
        let d = r.decision.expect("skew 10 > 2 * max(0, 1)");
        assert_eq!(d.hot, ChannelId(1));
        assert_eq!(d.cold, ChannelId(2));
        assert_eq!((d.hot_load, d.cold_load), (10, 0));
    }

    #[test]
    fn protocol_commits_and_agrees_on_the_cut() {
        // Merged roster = all 12 nodes of a ring, hot = 0, cold = 1.
        let g = generators::ring(12);
        let n = 12usize;
        let roster: Vec<NodeId> = (0..n).map(NodeId).collect();
        let spec = ReshardSpec::new(roster.clone(), ChannelId(0), ChannelId(1), 7);
        // Every roster node attached to the hot channel.
        let channels = ChannelSet::from_masks(2, vec![0b01; n]);
        let mut eng =
            SyncEngine::with_channels(&g, channels, |v| ReshardNode::new(spec.clone(), v));
        let outcome = eng.run(100);
        assert!(outcome.is_completed(), "protocol quiesces");
        let leader = eng.node(NodeId(0));
        assert_eq!(leader.committed(), Some(true));
        let migrators = leader.migrating_nodes();
        assert!(!migrators.is_empty() && migrators.len() < n);
        // Every member reaches the same verdict, cut and migrating set.
        for v in g.nodes() {
            let node = eng.node(v);
            assert_eq!(node.committed(), Some(true));
            assert_eq!(node.cut_child(), leader.cut_child());
            assert_eq!(node.checksum(), leader.checksum());
            assert_eq!(node.migrating_nodes(), migrators);
            assert_eq!(node.migrating(), migrators.contains(&v));
        }
        // The cut is balance-optimal for the leader's private walk.
        let walk = wilson_parents(n, 7);
        let (cut, size) = balance_cut(&walk);
        assert_eq!(leader.cut_child(), Some(cut as u32));
        assert_eq!(migrators.len(), size);
        // Stream rounds: ceil((m-1)/3) parent words + cut + notify + veto
        // + observe, plus the engine's final all-idle round.
        let words = n.div_ceil(3);
        assert!(eng.round() <= (words + 5) as u64);
    }

    #[test]
    fn bystanders_are_inert() {
        let g = generators::ring(4);
        let mut eng = SyncEngine::new(&g, |_| ReshardNode::bystander());
        let outcome = eng.run(10);
        assert!(outcome.is_completed());
        assert!(eng.round() <= 1);
        for v in g.nodes() {
            assert_eq!(eng.node(v).committed(), None);
        }
    }
}
