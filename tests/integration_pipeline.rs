//! Cross-crate integration tests: the full pipelines of the paper, exercised
//! end to end through the facade crate.

use multimedia_net::baselines::{broadcast_only, p2p};
use multimedia_net::graph::{generators, mst as refmst, partition_quality, traversal, NodeId};
use multimedia_net::multimedia::{
    global_fn::{self, Min, Sum, Xor},
    lower_bounds, mst,
    partition::{deterministic, randomized},
    size, MultimediaNetwork,
};

#[test]
fn full_pipeline_on_every_family() {
    for fam in generators::Family::ALL {
        let g = fam.generate(80, 31);
        let n = g.node_count();
        let net = MultimediaNetwork::new(g.clone());

        // Partition invariants.
        let det = deterministic::partition(&net);
        assert!(
            det.forest.is_mst_subforest(&g),
            "{fam}: not an MST subforest"
        );
        let q = partition_quality(&det.forest);
        assert!(
            q.max_radius as f64 <= 8.0 * (n as f64).sqrt() + 8.0,
            "{fam}"
        );

        // Global function agrees with a sequential reference.
        let inputs: Vec<Sum> = (0..n as u64).map(|i| Sum(i + 1)).collect();
        let expected: u64 = (1..=n as u64).sum();
        let run = global_fn::compute_deterministic(&net, &inputs);
        assert_eq!(run.value.0, expected, "{fam}");

        // MST agrees with Kruskal.
        let tree = mst::minimum_spanning_tree(&net);
        assert!(refmst::is_minimum_spanning_tree(&g, &tree.edges), "{fam}");
    }
}

#[test]
fn multimedia_scaling_beats_single_media_scaling_on_ring() {
    // The headline separation: on rings (diameter n/2) the multimedia time
    // grows like O~(sqrt n) while both single-medium costs grow linearly in n.
    // At unit-test sizes the constants still favour the baselines, so the
    // test checks the *growth rates* (the crossover itself is exhibited by
    // experiment E4 at larger n); correctness is checked against both
    // baselines at the smaller size.
    let sizes = [1024usize, 4096];
    let mut mm_times = Vec::new();
    let mut p2p_bounds = Vec::new();
    for &n in &sizes {
        let g = generators::Family::Ring.generate(n, 5);
        let net = MultimediaNetwork::new(g.clone());
        let inputs: Vec<Min> = (0..n as u64)
            .map(|i| Min((i * 2654435761) % 100_000))
            .collect();
        let expected = inputs.iter().map(|m| m.0).min().unwrap();
        let mm = global_fn::compute_deterministic(&net, &inputs);
        assert_eq!(mm.value.0, expected);
        mm_times.push(mm.total_cost().rounds as f64);
        let d = traversal::diameter_radius(&g).0;
        p2p_bounds.push(lower_bounds::point_to_point_bound(d) as f64);

        if n == 1024 {
            // Baseline correctness and lower-bound conformance at the small size.
            let raw: Vec<u64> = inputs.iter().map(|m| m.0).collect();
            let p2p_run = p2p::global_function(&g, NodeId(0), &raw, |a, b| *a.min(b));
            assert_eq!(p2p_run.value, expected);
            assert!(p2p_run.total_cost().rounds >= lower_bounds::point_to_point_bound(d));
            let bc_run = broadcast_only::global_function_tdma(&raw, |a, b| *a.min(b));
            assert_eq!(bc_run.value, expected);
            assert!(bc_run.cost.rounds >= lower_bounds::broadcast_bound(n));
        }
    }
    // Quadrupling n doubles sqrt(n): the multimedia time should grow by about
    // 2x (allow up to 3.2x for the log* and scheduling terms), while the
    // point-to-point bound grows by exactly 4x.
    let mm_growth = mm_times[1] / mm_times[0];
    let p2p_growth = p2p_bounds[1] / p2p_bounds[0];
    assert!(
        mm_growth < 3.2,
        "multimedia time grew by {mm_growth:.2}x when n quadrupled; expected ~2x (sqrt n scaling)"
    );
    assert!(
        mm_growth < p2p_growth,
        "multimedia growth {mm_growth:.2}x must be below the point-to-point growth {p2p_growth:.2}x"
    );
}

#[test]
fn ray_graph_tracks_min_d_sqrt_n() {
    // Experiment E4's key shape: on ray graphs the multimedia time follows
    // min{d, sqrt n} (up to polylog factors), not d and not n.
    let n = 1025;
    let short = lower_bounds::ray_network(n, 8, 3); // d << sqrt(n)
    let long = lower_bounds::ray_network(n, 256, 3); // d >> sqrt(n)
    let mk_inputs =
        |net: &MultimediaNetwork| -> Vec<Sum> { (0..net.node_count() as u64).map(Sum).collect() };
    let short_run = global_fn::compute_randomized(&short, &mk_inputs(&short), 1);
    let long_run = global_fn::compute_randomized(&long, &mk_inputs(&long), 1);
    // Larger diameter should not translate into proportionally larger time:
    // both are governed by sqrt(n) once d exceeds it.
    let ratio = long_run.total_cost().rounds as f64 / short_run.total_cost().rounds.max(1) as f64;
    assert!(
        ratio < 16.0,
        "time should not scale with d beyond sqrt(n); ratio {ratio}"
    );
}

#[test]
fn randomized_partition_statistics() {
    let n = 800;
    let g = generators::Family::RandomConnected.generate(n, 13);
    let net = MultimediaNetwork::new(g);
    let mut trees = Vec::new();
    for seed in 0..10 {
        let out = randomized::partition(&net, seed);
        assert!(out.outcome.forest.max_radius() as f64 <= 4.0 * (n as f64).sqrt());
        trees.push(out.outcome.forest.tree_count());
    }
    let avg = trees.iter().sum::<usize>() as f64 / trees.len() as f64;
    assert!(avg <= 6.0 * (n as f64).sqrt());
}

#[test]
fn size_procedures_agree() {
    let g = generators::Family::Grid.generate(529, 9);
    let real_n = g.node_count();
    let net = MultimediaNetwork::new(g);
    assert_eq!(size::deterministic_count(&net).n, real_n);
    let est = size::randomized_estimate(&net, 4);
    assert!(est.estimate >= 1);
}

#[test]
fn xor_and_sum_over_same_partition() {
    let g = generators::Family::Torus.generate(256, 17);
    let n = g.node_count();
    let net = MultimediaNetwork::new(g);
    let part = deterministic::partition(&net);
    let xs: Vec<Xor> = (0..n as u64).map(Xor).collect();
    let expected_xor = (0..n as u64).fold(0, |a, b| a ^ b);
    let run = global_fn::compute_with_partition_deterministic(&net, &part, &xs);
    assert_eq!(run.value.0, expected_xor);
}
