//! Property-based tests (proptest) on the core invariants of the paper's
//! data structures and algorithms, over randomly generated connected graphs.

use multimedia_net::graph::{generators, mst as refmst, GraphBuilder, NodeId, UnionFind};
use multimedia_net::multimedia::{
    global_fn::{self, Min, Sum},
    mst,
    partition::{deterministic, randomized},
    MultimediaNetwork,
};
use multimedia_net::symmetry::{
    is_maximal_independent, is_proper_coloring, mis_with_roots, three_color, RootedForest,
};
use proptest::prelude::*;

/// Strategy: a connected random graph of 2..=60 nodes with distinct weights.
fn connected_graph() -> impl Strategy<Value = multimedia_net::graph::Graph> {
    (2usize..=60, 0u64..1000, 0.0f64..0.3).prop_map(|(n, seed, p)| {
        generators::assign_random_weights(&generators::random_connected(n, p, seed), seed ^ 0xabc)
    })
}

/// Strategy: a rooted forest of 1..=80 vertices given by random attachment.
fn rooted_forest() -> impl Strategy<Value = (RootedForest, Vec<u64>)> {
    (1usize..=80, 0u64..1_000).prop_map(|(k, seed)| {
        let mut parent = Vec::with_capacity(k);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for v in 0..k {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if v == 0 || state % 5 == 0 {
                parent.push(None);
            } else {
                parent.push(Some((state as usize) % v));
            }
        }
        let ids: Vec<u64> = (0..k as u64).map(|i| i.wrapping_mul(2654435761) ^ seed).collect();
        (RootedForest::new(parent).unwrap(), ids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn deterministic_partition_invariants(g in connected_graph()) {
        let n = g.node_count();
        let net = MultimediaNetwork::new(g.clone());
        let out = deterministic::partition(&net);
        // Spanning, MST-subforest, radius bound.
        prop_assert_eq!(out.forest.node_count(), n);
        prop_assert!(out.forest.is_mst_subforest(&g));
        let bound = 8.0 * (n as f64).sqrt() + 8.0;
        prop_assert!((out.forest.max_radius() as f64) <= bound);
        // If more than one tree remains, every tree has at least sqrt(n) nodes.
        if out.forest.tree_count() > 1 {
            prop_assert!(out.forest.min_tree_size() as f64 >= (n as f64).sqrt().floor());
        }
    }

    #[test]
    fn randomized_partition_invariants(g in connected_graph(), seed in 0u64..500) {
        let n = g.node_count();
        let net = MultimediaNetwork::new(g);
        let out = randomized::partition(&net, seed);
        prop_assert_eq!(out.outcome.forest.node_count(), n);
        prop_assert!((out.outcome.forest.max_radius() as f64) <= 4.0 * (n as f64).sqrt() + 1.0);
    }

    #[test]
    fn global_functions_match_sequential_reference(g in connected_graph(), seed in 0u64..100) {
        let n = g.node_count();
        let net = MultimediaNetwork::new(g);
        let sums: Vec<Sum> = (0..n as u64).map(|i| Sum(i.wrapping_mul(97) % 1000)).collect();
        let expected: u64 = sums.iter().map(|s| s.0).sum();
        let det = global_fn::compute_deterministic(&net, &sums);
        prop_assert_eq!(det.value.0, expected);
        let mins: Vec<Min> = (0..n as u64).map(|i| Min(5000 - (i * 13) % 4000)).collect();
        let expected_min = mins.iter().map(|m| m.0).min().unwrap();
        let rnd = global_fn::compute_randomized(&net, &mins, seed);
        prop_assert_eq!(rnd.value.0, expected_min);
    }

    #[test]
    fn distributed_mst_equals_kruskal(g in connected_graph()) {
        let net = MultimediaNetwork::new(g.clone());
        let run = mst::minimum_spanning_tree(&net);
        prop_assert!(refmst::is_minimum_spanning_tree(&g, &run.edges));
    }

    #[test]
    fn coloring_and_mis_invariants((forest, ids) in rooted_forest()) {
        let coloring = three_color(&forest, &ids);
        prop_assert!(is_proper_coloring(&forest, &coloring.colors));
        prop_assert!(coloring.colors.iter().all(|&c| c < 3));
        prop_assert!(coloring.cv_iterations <= 10);
        let mis = mis_with_roots(&forest, &coloring.colors);
        prop_assert!(is_maximal_independent(&forest, &mis.in_mis));
        for r in forest.roots() {
            prop_assert!(mis.in_mis[r]);
        }
    }

    #[test]
    fn union_find_counts_components(edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80)) {
        let mut uf = UnionFind::new(30);
        let mut builder = GraphBuilder::new(30);
        for (a, b) in &edges {
            if a != b {
                uf.union(*a, *b);
                let _ = builder.try_add_edge(NodeId(*a), NodeId(*b), 1);
            }
        }
        let g = builder.build();
        let comps = multimedia_net::graph::traversal::connected_components(&g);
        prop_assert_eq!(comps.len(), uf.set_count());
    }

    #[test]
    fn kruskal_and_prim_agree(g in connected_graph()) {
        let k = refmst::kruskal(&g);
        let p = refmst::prim(&g, NodeId(0));
        prop_assert_eq!(refmst::weight_of(&g, &k), refmst::weight_of(&g, &p));
        prop_assert!(refmst::is_spanning_tree(&g, &k));
    }
}
