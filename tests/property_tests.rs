//! Property-based tests (proptest) on the core invariants of the paper's
//! data structures and algorithms, over randomly generated connected graphs.

use multimedia_net::graph::{generators, mst as refmst, GraphBuilder, NodeId, UnionFind};
use multimedia_net::multimedia::{
    global_fn::{self, Min, Sum},
    mst,
    partition::{deterministic, randomized},
    MultimediaNetwork,
};
use multimedia_net::sim::{Protocol, ReferenceEngine, RoundIo, SlotOutcome, SyncEngine};
use multimedia_net::symmetry::{
    is_maximal_independent, is_proper_coloring, mis_with_roots, three_color, RootedForest,
};
use proptest::prelude::*;

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 31)
}

/// Pseudo-random protocol for engine-equivalence testing: folds every
/// observation (inbox contents **in delivery order**, slot outcomes) into a
/// running hash, and derives its sends / channel writes from that hash.  Any
/// divergence in message ordering, slot resolution, or termination between
/// two engines cascades into different final states.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Chaos {
    id: u64,
    seed: u64,
    state: u64,
    rounds_active: u32,
}

impl Protocol for Chaos {
    type Msg = u64;
    fn step(&mut self, io: &mut RoundIo<'_, u64>) {
        for (from, &m) in io.inbox() {
            self.state = mix(self.state, mix(from.index() as u64, m));
        }
        match io.prev_slot() {
            SlotOutcome::Idle => {}
            SlotOutcome::Success { from, msg } => {
                self.state = mix(self.state, mix(from.index() as u64, *msg))
            }
            SlotOutcome::Collision => self.state = mix(self.state, 0xc0111),
            SlotOutcome::Erased => self.state = mix(self.state, 0xe2a5ed),
        }
        if self.rounds_active > 0 {
            self.rounds_active -= 1;
            let r = mix(self.seed, mix(self.id, io.round()));
            for i in 0..io.degree() {
                let v = io.neighbors().target(i);
                if !mix(r, i as u64).is_multiple_of(3) {
                    io.send(v, mix(self.state, i as u64));
                }
            }
            if mix(r, 0x5107).is_multiple_of(7) {
                io.write_channel(self.state);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_active == 0
    }
}

/// Strategy: a connected random graph of 2..=60 nodes with distinct weights.
fn connected_graph() -> impl Strategy<Value = multimedia_net::graph::Graph> {
    (2usize..=60, 0u64..1000, 0.0f64..0.3).prop_map(|(n, seed, p)| {
        generators::assign_random_weights(&generators::random_connected(n, p, seed), seed ^ 0xabc)
    })
}

/// Strategy: a rooted forest of 1..=80 vertices given by random attachment.
fn rooted_forest() -> impl Strategy<Value = (RootedForest, Vec<u64>)> {
    (1usize..=80, 0u64..1_000).prop_map(|(k, seed)| {
        let mut parent = Vec::with_capacity(k);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for v in 0..k {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if v == 0 || state % 5 == 0 {
                parent.push(None);
            } else {
                parent.push(Some((state as usize) % v));
            }
        }
        let ids: Vec<u64> = (0..k as u64)
            .map(|i| i.wrapping_mul(2654435761) ^ seed)
            .collect();
        (RootedForest::new(parent).unwrap(), ids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn deterministic_partition_invariants(g in connected_graph()) {
        let n = g.node_count();
        let net = MultimediaNetwork::new(g.clone());
        let out = deterministic::partition(&net);
        // Spanning, MST-subforest, radius bound.
        prop_assert_eq!(out.forest.node_count(), n);
        prop_assert!(out.forest.is_mst_subforest(&g));
        let bound = 8.0 * (n as f64).sqrt() + 8.0;
        prop_assert!((out.forest.max_radius() as f64) <= bound);
        // If more than one tree remains, every tree has at least sqrt(n) nodes.
        if out.forest.tree_count() > 1 {
            prop_assert!(out.forest.min_tree_size() as f64 >= (n as f64).sqrt().floor());
        }
    }

    #[test]
    fn randomized_partition_invariants(g in connected_graph(), seed in 0u64..500) {
        let n = g.node_count();
        let net = MultimediaNetwork::new(g);
        let out = randomized::partition(&net, seed);
        prop_assert_eq!(out.outcome.forest.node_count(), n);
        prop_assert!((out.outcome.forest.max_radius() as f64) <= 4.0 * (n as f64).sqrt() + 1.0);
    }

    #[test]
    fn global_functions_match_sequential_reference(g in connected_graph(), seed in 0u64..100) {
        let n = g.node_count();
        let net = MultimediaNetwork::new(g);
        let sums: Vec<Sum> = (0..n as u64).map(|i| Sum(i.wrapping_mul(97) % 1000)).collect();
        let expected: u64 = sums.iter().map(|s| s.0).sum();
        let det = global_fn::compute_deterministic(&net, &sums);
        prop_assert_eq!(det.value.0, expected);
        let mins: Vec<Min> = (0..n as u64).map(|i| Min(5000 - (i * 13) % 4000)).collect();
        let expected_min = mins.iter().map(|m| m.0).min().unwrap();
        let rnd = global_fn::compute_randomized(&net, &mins, seed);
        prop_assert_eq!(rnd.value.0, expected_min);
    }

    #[test]
    fn distributed_mst_equals_kruskal(g in connected_graph()) {
        let net = MultimediaNetwork::new(g.clone());
        let run = mst::minimum_spanning_tree(&net);
        prop_assert!(refmst::is_minimum_spanning_tree(&g, &run.edges));
    }

    #[test]
    fn coloring_and_mis_invariants((forest, ids) in rooted_forest()) {
        let coloring = three_color(&forest, &ids);
        prop_assert!(is_proper_coloring(&forest, &coloring.colors));
        prop_assert!(coloring.colors.iter().all(|&c| c < 3));
        prop_assert!(coloring.cv_iterations <= 10);
        let mis = mis_with_roots(&forest, &coloring.colors);
        prop_assert!(is_maximal_independent(&forest, &mis.in_mis));
        for r in forest.roots() {
            prop_assert!(mis.in_mis[r]);
        }
    }

    #[test]
    fn union_find_counts_components(edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80)) {
        let mut uf = UnionFind::new(30);
        let mut builder = GraphBuilder::new(30);
        for (a, b) in &edges {
            if a != b {
                uf.union(*a, *b);
                let _ = builder.try_add_edge(NodeId(*a), NodeId(*b), 1);
            }
        }
        let g = builder.build();
        let comps = multimedia_net::graph::traversal::connected_components(&g);
        prop_assert_eq!(comps.count(), uf.set_count());
    }

    #[test]
    fn flat_engine_matches_reference_engine(g in connected_graph(), seed in 0u64..1000, active in 1u32..24) {
        let init = |v: NodeId| Chaos {
            id: v.index() as u64,
            seed,
            state: mix(seed, v.index() as u64),
            rounds_active: active + (v.index() as u32 % 5),
        };
        let mut flat = SyncEngine::new(&g, init);
        let mut reference = ReferenceEngine::new(&g, init);
        let flat_out = flat.run(400);
        let ref_out = reference.run(400);
        prop_assert_eq!(flat_out, ref_out);
        prop_assert_eq!(
            flat.last_slot_state(netsim_sim::ChannelId::DEFAULT),
            reference.last_slot_state(netsim_sim::ChannelId::DEFAULT)
        );
        let (flat_nodes, flat_cost) = flat.into_parts();
        let (ref_nodes, ref_cost) = reference.into_parts();
        prop_assert_eq!(flat_cost, ref_cost);
        prop_assert_eq!(flat_nodes, ref_nodes);
    }

    #[test]
    fn engine_is_deterministic_across_runs(g in connected_graph(), seed in 0u64..1000) {
        let init = |v: NodeId| Chaos {
            id: v.index() as u64,
            seed,
            state: mix(seed, v.index() as u64),
            rounds_active: 12,
        };
        let run = || {
            let mut eng = SyncEngine::new(&g, init);
            let out = eng.run(300);
            let (nodes, cost) = eng.into_parts();
            (out, nodes, cost)
        };
        let (a_out, a_nodes, a_cost) = run();
        let (b_out, b_nodes, b_cost) = run();
        prop_assert_eq!(a_out, b_out);
        prop_assert_eq!(a_cost, b_cost);
        prop_assert_eq!(a_nodes, b_nodes);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_engine_matches_sequential(g in connected_graph(), seed in 0u64..500, threads in 2usize..9) {
        let init = |v: NodeId| Chaos {
            id: v.index() as u64,
            seed,
            state: mix(seed, v.index() as u64),
            rounds_active: 10 + (v.index() as u32 % 7),
        };
        // The parallel engine runs over a *rebuilt* graph: if CSR
        // construction were not a pure function of the edge list, neighbour
        // (and hence inbox) order would drift and the runs would diverge —
        // pinning rebuild determinism through the parallel merge itself.
        // (CSR rebuild equality is asserted directly in
        // crates/netsim-graph/tests/csr_adjacency.rs.)
        let mut b = GraphBuilder::new(g.node_count());
        for e in g.edges() {
            b.add_edge(e.u, e.v, e.weight);
        }
        let rebuilt = b.build();
        let mut seq = SyncEngine::new(&g, init);
        let mut par = SyncEngine::new(&rebuilt, init);
        let seq_out = seq.run(400);
        let par_out = par.run_parallel(400, threads);
        prop_assert_eq!(seq_out, par_out);
        let (seq_nodes, seq_cost) = seq.into_parts();
        let (par_nodes, par_cost) = par.into_parts();
        prop_assert_eq!(seq_cost, par_cost);
        prop_assert_eq!(seq_nodes, par_nodes);
    }

    #[test]
    fn kruskal_and_prim_agree(g in connected_graph()) {
        let k = refmst::kruskal(&g);
        let p = refmst::prim(&g, NodeId(0));
        prop_assert_eq!(refmst::weight_of(&g, &k), refmst::weight_of(&g, &p));
        prop_assert!(refmst::is_spanning_tree(&g, &k));
    }
}
