//! # multimedia-net
//!
//! Facade crate for the reproduction of *"The Power of Multimedia: Combining
//! Point-to-Point and Multiaccess Networks"* (Afek, Landau, Schieber, Yung;
//! PODC 1988 / Information & Computation 1990).
//!
//! It re-exports the workspace crates under one roof:
//!
//! * [`graph`] — topologies, generators, reference MST, spanning forests;
//! * [`sim`] — the synchronous / asynchronous multimedia-network simulator;
//! * [`channel`] — multiaccess-channel contention resolution and estimation;
//! * [`symmetry`] — 3-colouring and MIS on rooted forests;
//! * [`multimedia`] — the paper's algorithms (partitioning, global sensitive
//!   functions, MST, synchronizer, size estimation, lower bounds);
//! * [`baselines`] — single-medium comparators.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduction of
//! every result in the paper.
//!
//! ```
//! use multimedia_net::multimedia::{global_fn::{self, Min}, MultimediaNetwork};
//! use multimedia_net::graph::generators;
//!
//! let net = MultimediaNetwork::new(generators::Family::Ring.generate(64, 1));
//! let inputs: Vec<Min> = (0..64u64).map(|i| Min(1000 + (i * 37) % 64)).collect();
//! let run = global_fn::compute_deterministic(&net, &inputs);
//! assert_eq!(run.value.0, 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use channel_access as channel;
pub use multimedia;
pub use netsim_graph as graph;
pub use netsim_sim as sim;
pub use symmetry;
